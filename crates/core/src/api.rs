//! High-level solver facade.
//!
//! [`Solver`] ties together a [`Pattern`], a vectorization [`Method`], a
//! [`Tiling`] scheme, a vector [`Width`] and a thread pool, and runs
//! whole sweeps on 1D/2D/3D grids. This is the API the examples and the
//! benchmark harness use; the underlying executors remain public for
//! fine-grained use.
//!
//! ```
//! use stencil_core::{kernels, Method, Solver, Tiling};
//! use stencil_grid::Grid1D;
//!
//! let grid = Grid1D::from_fn(1024, |i| if i == 512 { 1.0 } else { 0.0 });
//! let out = Solver::new(kernels::heat1d())
//!     .method(Method::Folded { m: 2 })
//!     .tiling(Tiling::Tessellate { time_block: 8 })
//!     .threads(2)
//!     .run_1d(&grid, 100);
//! let mass: f64 = out.as_slice().iter().sum();
//! assert!((mass - 1.0).abs() < 1e-9);
//! ```

use crate::exec::{dlt, folded, multiload, reorg, scalar, xlayout};
use crate::folding::fold;
use crate::pattern::Pattern;
use crate::tile::{spatial, split, tessellate};
use stencil_grid::{Grid1D, Grid2D, Grid3D, PingPong};
use stencil_runtime::ThreadPool;
use stencil_simd::{NativeF64x4, NativeF64x8, SimdF64};

/// Vectorization scheme (the methods compared in Fig. 8/9/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Scalar reference sweep.
    Scalar,
    /// Multiple loads: one unaligned load per tap.
    MultipleLoads,
    /// Data reorganization: aligned loads + shuffles (1D only).
    DataReorg,
    /// Global dimension-lifted transpose (1D block-free, or SDSL when
    /// combined with [`Tiling::Split`]).
    Dlt,
    /// The paper's transpose layout, single-step (§2).
    TransposeLayout,
    /// The paper's temporal computation folding with unrolling factor
    /// `m` (§3); `m = 1` is the register-transpose pipeline without
    /// temporal fusion.
    Folded {
        /// Unrolling factor (time steps fused per register update).
        m: usize,
    },
}

/// Tiling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tiling {
    /// Whole-grid Jacobi sweeps (the "block-free" rows of Fig. 8).
    None,
    /// Tessellate tiling (Yuan) with `time_block` inner steps per round.
    Tessellate {
        /// Inner (possibly folded) steps per round.
        time_block: usize,
    },
    /// Split tiling over DLT layout — the SDSL configuration.
    Split {
        /// Inner steps per round.
        time_block: usize,
    },
    /// Spatial blocking only (one step at a time).
    Spatial {
        /// Tile extents `(outer, inner)` = (y,x) in 2D / (z,y) in 3D.
        block: (usize, usize),
    },
}

/// SIMD width selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// Scalar lanes (1): useful for calibration.
    W1,
    /// 4 x f64 (AVX2-class).
    W4,
    /// 8 x f64 (AVX-512-class).
    W8,
}

impl Width {
    /// Widest width with a native backend on this build.
    pub fn native_max() -> Self {
        if stencil_simd::HAS_AVX512 {
            Width::W8
        } else {
            Width::W4
        }
    }

    /// Lane count.
    pub fn lanes(self) -> usize {
        match self {
            Width::W1 => 1,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }
}

/// Configured stencil solver.
pub struct Solver {
    pattern: Pattern,
    method: Method,
    tiling: Tiling,
    width: Width,
    pool: ThreadPool,
}

impl Solver {
    /// New solver for `pattern` (defaults: multiple-loads, no tiling,
    /// AVX2-class width, single thread).
    pub fn new(pattern: Pattern) -> Self {
        Self {
            pattern,
            method: Method::MultipleLoads,
            tiling: Tiling::None,
            width: Width::W4,
            pool: ThreadPool::new(1),
        }
    }

    /// Select the vectorization method.
    pub fn method(mut self, m: Method) -> Self {
        self.method = m;
        self
    }

    /// Select the tiling scheme.
    pub fn tiling(mut self, t: Tiling) -> Self {
        self.tiling = t;
        self
    }

    /// Select the vector width.
    pub fn width(mut self, w: Width) -> Self {
        self.width = w;
        self
    }

    /// Use `n` worker threads.
    pub fn threads(mut self, n: usize) -> Self {
        self.pool = ThreadPool::new(n);
        self
    }

    /// The configured pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Run `t` time steps on a 1D grid.
    pub fn run_1d(&self, grid: &Grid1D, t: usize) -> Grid1D {
        match self.width {
            Width::W1 => self.run_1d_w::<f64>(grid, t),
            Width::W4 => self.run_1d_w::<NativeF64x4>(grid, t),
            Width::W8 => self.run_1d_w::<NativeF64x8>(grid, t),
        }
    }

    fn run_1d_w<V: SimdF64>(&self, grid: &Grid1D, t: usize) -> Grid1D {
        assert_eq!(self.pattern.dims(), 1, "pattern is not 1D");
        let p = &self.pattern;
        match self.tiling {
            Tiling::None => match self.method {
                Method::Scalar => {
                    let mut pp = PingPong::new(grid.clone());
                    scalar::sweep_1d(&mut pp, p, t);
                    pp.into_current()
                }
                Method::MultipleLoads => {
                    let mut pp = PingPong::new(grid.clone());
                    multiload::sweep_1d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
                Method::DataReorg => {
                    let mut pp = PingPong::new(grid.clone());
                    reorg::sweep_1d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
                Method::Dlt => dlt::sweep_1d::<V>(grid, p, t),
                Method::TransposeLayout => xlayout::sweep_1d::<V>(grid, p, t),
                Method::Folded { m } => xlayout::sweep_folded_1d::<V>(grid, p, m, t),
            },
            Tiling::Tessellate { time_block } => {
                let (m, taps) = match self.method {
                    Method::Folded { m } => (m, fold(p, m)),
                    _ => (1, p.clone()),
                };
                let reff = taps.radius();
                let tw = taps.weights().to_vec();
                let mut pp = PingPong::new(grid.clone());
                let folded_steps = t / m;
                match self.method {
                    Method::Scalar => tessellate::run_1d(
                        &self.pool,
                        &mut pp,
                        reff,
                        reff,
                        time_block,
                        folded_steps,
                        &|s: &[f64], d: &mut [f64], lo, hi| {
                            scalar::step_range_1d(s, d, &tw, lo, hi)
                        },
                    ),
                    Method::MultipleLoads | Method::DataReorg => tessellate::run_1d(
                        &self.pool,
                        &mut pp,
                        reff,
                        reff,
                        time_block,
                        folded_steps,
                        &|s: &[f64], d: &mut [f64], lo, hi| {
                            multiload::step_range_1d::<V>(s, d, &tw, lo, hi)
                        },
                    ),
                    Method::TransposeLayout | Method::Folded { .. } => tessellate::run_1d(
                        &self.pool,
                        &mut pp,
                        reff,
                        reff,
                        time_block,
                        folded_steps,
                        &|s: &[f64], d: &mut [f64], lo, hi| {
                            folded::step_squares_range_1d::<V>(s, d, &tw, lo, hi)
                        },
                    ),
                    Method::Dlt => panic!("DLT pairs with Tiling::Split (SDSL), not Tessellate"),
                }
                // leftover unfolded steps
                for _ in 0..t % m {
                    let (src, dst) = pp.src_dst();
                    multiload::step_1d::<V>(src.as_slice(), dst.as_mut_slice(), p.weights());
                    pp.swap();
                }
                pp.into_current()
            }
            Tiling::Split { time_block } => match self.method {
                Method::Dlt => split::sweep_1d::<V>(&self.pool, grid, p, time_block, t),
                _ => panic!("Tiling::Split is the SDSL configuration; use Method::Dlt"),
            },
            Tiling::Spatial { .. } => panic!("spatial blocking is 2D/3D-only"),
        }
    }

    /// Run `t` time steps on a 2D grid.
    pub fn run_2d(&self, grid: &Grid2D, t: usize) -> Grid2D {
        match self.width {
            Width::W1 => self.run_2d_w::<f64>(grid, t),
            Width::W4 => self.run_2d_w::<NativeF64x4>(grid, t),
            Width::W8 => self.run_2d_w::<NativeF64x8>(grid, t),
        }
    }

    fn run_2d_w<V: SimdF64>(&self, grid: &Grid2D, t: usize) -> Grid2D {
        assert_eq!(self.pattern.dims(), 2, "pattern is not 2D");
        let p = &self.pattern;
        match self.tiling {
            Tiling::None => match self.method {
                Method::Scalar => {
                    let mut pp = PingPong::new(grid.clone());
                    scalar::sweep_2d(&mut pp, p, t);
                    pp.into_current()
                }
                Method::MultipleLoads | Method::DataReorg => {
                    let mut pp = PingPong::new(grid.clone());
                    multiload::sweep_2d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
                Method::TransposeLayout => folded::sweep_2d::<V>(grid, p, 1, t),
                Method::Folded { m } => folded::sweep_2d::<V>(grid, p, m, t),
                Method::Dlt => panic!("2D DLT is provided via Tiling::Split (SDSL hybrid)"),
            },
            Tiling::Tessellate { time_block } => {
                let m = match self.method {
                    Method::Folded { m } => m,
                    _ => 1,
                };
                let mut pp = PingPong::new(grid.clone());
                let folded_steps = t / m;
                match self.method {
                    Method::Scalar => {
                        let pc = p.clone();
                        tessellate::run_2d(
                            &self.pool,
                            &mut pp,
                            pc.radius(),
                            pc.radius(),
                            time_block,
                            folded_steps,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                scalar::step_range_2d(s, d, &pc, ys, xs)
                            },
                        );
                    }
                    Method::MultipleLoads | Method::DataReorg => {
                        let pc = p.clone();
                        tessellate::run_2d(
                            &self.pool,
                            &mut pp,
                            pc.radius(),
                            pc.radius(),
                            time_block,
                            folded_steps,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                multiload::step_range_2d::<V>(s, d, &pc, ys, xs)
                            },
                        );
                    }
                    Method::TransposeLayout | Method::Folded { .. } => {
                        let k = folded::FoldedKernel::new(p, m);
                        let reff = k.radius();
                        tessellate::run_2d(
                            &self.pool,
                            &mut pp,
                            reff,
                            reff,
                            time_block,
                            folded_steps,
                            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                                folded::step_range_2d::<V>(&k, s, d, ys, xs)
                            },
                        );
                    }
                    Method::Dlt => panic!("DLT pairs with Tiling::Split (SDSL), not Tessellate"),
                }
                for _ in 0..t % m {
                    let (src, dst) = pp.src_dst();
                    multiload::step_2d::<V>(src, dst, p);
                    pp.swap();
                }
                pp.into_current()
            }
            Tiling::Split { time_block } => match self.method {
                Method::Dlt => split::sweep_2d::<V>(&self.pool, grid, p, time_block, t),
                _ => panic!("Tiling::Split is the SDSL configuration; use Method::Dlt"),
            },
            Tiling::Spatial { block } => {
                let pc = p.clone();
                let mut pp = PingPong::new(grid.clone());
                spatial::run_2d(
                    &self.pool,
                    &mut pp,
                    pc.radius(),
                    block,
                    t,
                    &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                        multiload::step_range_2d::<V>(s, d, &pc, ys, xs)
                    },
                );
                pp.into_current()
            }
        }
    }

    /// Run `t` time steps on a 3D grid.
    pub fn run_3d(&self, grid: &Grid3D, t: usize) -> Grid3D {
        match self.width {
            Width::W1 => self.run_3d_w::<f64>(grid, t),
            Width::W4 => self.run_3d_w::<NativeF64x4>(grid, t),
            Width::W8 => self.run_3d_w::<NativeF64x8>(grid, t),
        }
    }

    fn run_3d_w<V: SimdF64>(&self, grid: &Grid3D, t: usize) -> Grid3D {
        assert_eq!(self.pattern.dims(), 3, "pattern is not 3D");
        let p = &self.pattern;
        match self.tiling {
            Tiling::None => match self.method {
                Method::Scalar => {
                    let mut pp = PingPong::new(grid.clone());
                    scalar::sweep_3d(&mut pp, p, t);
                    pp.into_current()
                }
                Method::MultipleLoads | Method::DataReorg => {
                    let mut pp = PingPong::new(grid.clone());
                    multiload::sweep_3d::<V>(&mut pp, p, t);
                    pp.into_current()
                }
                Method::TransposeLayout => folded::sweep_3d::<V>(grid, p, 1, t),
                Method::Folded { m } => folded::sweep_3d::<V>(grid, p, m, t),
                Method::Dlt => panic!("3D DLT is provided via Tiling::Split (SDSL hybrid)"),
            },
            Tiling::Tessellate { time_block } => {
                let m = match self.method {
                    Method::Folded { m } => m,
                    _ => 1,
                };
                let mut pp = PingPong::new(grid.clone());
                let folded_steps = t / m;
                match self.method {
                    Method::Scalar => {
                        let pc = p.clone();
                        tessellate::run_3d(
                            &self.pool,
                            &mut pp,
                            pc.radius(),
                            pc.radius(),
                            time_block,
                            folded_steps,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                scalar::step_range_3d(s, d, &pc, zs, ys, xs)
                            },
                        );
                    }
                    Method::MultipleLoads | Method::DataReorg => {
                        let pc = p.clone();
                        tessellate::run_3d(
                            &self.pool,
                            &mut pp,
                            pc.radius(),
                            pc.radius(),
                            time_block,
                            folded_steps,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                multiload::step_range_3d::<V>(s, d, &pc, zs, ys, xs)
                            },
                        );
                    }
                    Method::TransposeLayout | Method::Folded { .. } => {
                        let k = folded::FoldedKernel::new(p, m);
                        let reff = k.radius();
                        tessellate::run_3d(
                            &self.pool,
                            &mut pp,
                            reff,
                            reff,
                            time_block,
                            folded_steps,
                            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                                folded::step_range_3d::<V>(&k, s, d, zs, ys, xs)
                            },
                        );
                    }
                    Method::Dlt => panic!("DLT pairs with Tiling::Split (SDSL), not Tessellate"),
                }
                for _ in 0..t % m {
                    let (src, dst) = pp.src_dst();
                    multiload::step_3d::<V>(src, dst, p);
                    pp.swap();
                }
                pp.into_current()
            }
            Tiling::Split { time_block } => match self.method {
                Method::Dlt => split::sweep_3d::<V>(&self.pool, grid, p, time_block, t),
                _ => panic!("Tiling::Split is the SDSL configuration; use Method::Dlt"),
            },
            Tiling::Spatial { block } => {
                let pc = p.clone();
                let mut pp = PingPong::new(grid.clone());
                spatial::run_3d(
                    &self.pool,
                    &mut pp,
                    pc.radius(),
                    block,
                    t,
                    &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                        multiload::step_range_3d::<V>(s, d, &pc, zs, ys, xs)
                    },
                );
                pp.into_current()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use stencil_grid::max_abs_diff;

    fn ref_1d(p: &Pattern, g: &Grid1D, t: usize) -> Grid1D {
        Solver::new(p.clone()).method(Method::Scalar).run_1d(g, t)
    }

    #[test]
    fn all_1d_methods_agree_block_free() {
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(256, |i| ((i * 7) % 13) as f64);
        let t = 6;
        let want = ref_1d(&p, &g, t);
        for m in [
            Method::MultipleLoads,
            Method::DataReorg,
            Method::Dlt,
            Method::TransposeLayout,
        ] {
            let got = Solver::new(p.clone()).method(m).run_1d(&g, t);
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12,
                "{m:?}"
            );
        }
    }

    #[test]
    fn tessellated_methods_agree_1d() {
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(300, |i| (i as f64 * 0.1).sin());
        let t = 12;
        let want = ref_1d(&p, &g, t);
        for (m, threads) in [
            (Method::MultipleLoads, 1),
            (Method::TransposeLayout, 4),
            (Method::Scalar, 3),
        ] {
            let got = Solver::new(p.clone())
                .method(m)
                .tiling(Tiling::Tessellate { time_block: 4 })
                .threads(threads)
                .run_1d(&g, t);
            assert!(
                max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12,
                "{m:?}"
            );
        }
    }

    #[test]
    fn sdsl_configuration_1d() {
        let p = kernels::heat1d();
        let g = Grid1D::from_fn(256, |i| (i % 11) as f64);
        let t = 8;
        let want = ref_1d(&p, &g, t);
        let got = Solver::new(p)
            .method(Method::Dlt)
            .tiling(Tiling::Split { time_block: 4 })
            .threads(4)
            .run_1d(&g, t);
        assert!(max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12);
    }

    #[test]
    fn folded_tessellated_2d_matches_folded_reference() {
        let p = kernels::box2d9p();
        let g = Grid2D::from_fn(40, 44, |y, x| ((y * 3 + x) % 17) as f64);
        // reference: block-free folded (same m) — identical semantics
        let want = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .run_2d(&g, 8);
        let got = Solver::new(p)
            .method(Method::Folded { m: 2 })
            .tiling(Tiling::Tessellate { time_block: 2 })
            .threads(4)
            .run_2d(&g, 8);
        assert!(max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-10);
    }

    #[test]
    fn widths_agree_2d() {
        let p = kernels::heat2d();
        let g = Grid2D::from_fn(30, 34, |y, x| ((y * 13 + x * 5) % 19) as f64);
        let a = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .width(Width::W4)
            .run_2d(&g, 4);
        let b = Solver::new(p.clone())
            .method(Method::Folded { m: 2 })
            .width(Width::W8)
            .run_2d(&g, 4);
        let c = Solver::new(p)
            .method(Method::Folded { m: 2 })
            .width(Width::W1)
            .run_2d(&g, 4);
        assert!(max_abs_diff(&a.to_dense(), &b.to_dense()) < 1e-10);
        assert!(max_abs_diff(&a.to_dense(), &c.to_dense()) < 1e-10);
    }

    #[test]
    fn three_d_paths_agree() {
        let p = kernels::heat3d();
        let g = Grid3D::from_fn(14, 14, 18, |z, y, x| ((z + y + x) % 5) as f64);
        let t = 4;
        let want = Solver::new(p.clone()).method(Method::Scalar).run_3d(&g, t);
        let ml = Solver::new(p.clone())
            .method(Method::MultipleLoads)
            .run_3d(&g, t);
        assert!(max_abs_diff(&want.to_dense(), &ml.to_dense()) < 1e-12);
        let tess = Solver::new(p)
            .method(Method::MultipleLoads)
            .tiling(Tiling::Tessellate { time_block: 2 })
            .threads(4)
            .run_3d(&g, t);
        assert!(max_abs_diff(&want.to_dense(), &tess.to_dense()) < 1e-12);
    }

    #[test]
    fn spatial_blocking_2d() {
        let p = kernels::box2d9p();
        let g = Grid2D::from_fn(33, 37, |y, x| ((y + 2 * x) % 9) as f64);
        let want = Solver::new(p.clone()).method(Method::Scalar).run_2d(&g, 5);
        let got = Solver::new(p)
            .tiling(Tiling::Spatial { block: (8, 8) })
            .threads(3)
            .run_2d(&g, 5);
        assert!(max_abs_diff(&want.to_dense(), &got.to_dense()) < 1e-12);
    }
}
