//! Parameter autotuning — the paper's declared future work ("the
//! performance is sensitive to the stencil parameters, significant
//! efforts are required in automatic tuning and this will be done
//! separately", §4.1).
//!
//! Three layers:
//!
//! * [`auto_method`] / [`auto_tiling`] — the compile-time static
//!   resolvers behind [`Method::Auto`] and [`Tiling::Auto`]: pick a
//!   vectorization method and tiling from the op-collect cost model
//!   (§3.2) and the register pipeline's radius bounds, with no probe
//!   runs. This is the [`Tuning::Static`](crate::Tuning) path and the
//!   fallback for everything else.
//! * The [`MeasuredTuner`] hook — the seam the measured
//!   [`Tuning`] modes route through. The `stencil-tune`
//!   crate installs its probing autotuner here ([`install_tuner`]);
//!   `stencil-core` itself stays free of probing and persistence so the
//!   dependency edge points outward (tune → core, never back).
//! * [`tune_time_block_1d`]/[`tune_time_block_2d`] — standalone measured
//!   probes over the tessellation *time block* (the parameter Table 1
//!   hand-tunes). Each candidate configuration is compiled **once** into
//!   a [`crate::Plan`] and reused across the warm-up and both probe
//!   passes, so tuning itself follows the plan-once/run-many discipline.

use crate::api::{Method, Ring3, Tiling, Tuning, Width};
use crate::cost;
use crate::pattern::Pattern;
use crate::plan::FoldPlan;
use crate::Solver;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use stencil_grid::{Grid1D, Grid2D};
use stencil_runtime::PoolHandle;

/// Profitability threshold θ >= 1 for choosing temporal folding
/// (Eq. 3); folding must save at least this factor of arithmetic to be
/// selected by [`auto_method`].
pub const AUTO_FOLD_THETA: f64 = 1.5;

/// Resolve [`Method::Auto`] for `p` at vector width `width` under
/// `tiling`, without probe runs:
///
/// * split tiling admits only DLT (the SDSL configuration);
/// * spatial blocking uses the straightforward vector kernel;
/// * otherwise prefer temporal folding `m = 2` when the folded radius
///   fits the register pipeline, the counterpart plan fits the register
///   budget, and the §3.2 profitability index clears
///   [`AUTO_FOLD_THETA`]; fall back to the transpose-layout pipeline,
///   then to multiple loads.
pub fn auto_method(p: &Pattern, width: Width, tiling: Tiling) -> Method {
    match tiling {
        Tiling::Split { .. } => return Method::Dlt,
        Tiling::Spatial { .. } => return Method::MultipleLoads,
        // Auto tiling resolves to None/Tessellate afterwards (see
        // auto_tiling), both of which admit every register method.
        Tiling::None | Tiling::Tessellate { .. } | Tiling::Auto => {}
    }
    let dims = p.dims();
    let cap = fold_radius_cap(dims, width);
    // The counterpart plan built here (and inside cost::profitability) is
    // rebuilt by Plan::compile for the chosen method; patterns are tiny
    // (<= (2R+1)^d weights), so this costs microseconds and only at
    // compile time — never on the run path.
    let fits = |m: usize| {
        m * p.radius() <= cap
            && (dims == 1 || FoldPlan::new(p, m).fresh.len() <= crate::exec::folded::MAX_F)
    };
    if fits(2) && cost::profitability(p, 2) >= AUTO_FOLD_THETA {
        Method::Folded { m: 2 }
    } else if fits(1) {
        Method::TransposeLayout
    } else {
        Method::MultipleLoads
    }
}

/// Largest folded radius `m * r` the register pipeline supports for a
/// pattern of dimensionality `dims` at vector width `width` — public
/// wrapper around the bound [`Solver::compile`] enforces, so candidate
/// generators (the measured tuner's `Folded { m: 3 }` probes) can
/// skip configurations compilation would reject.
pub fn fold_radius_cap(dims: usize, width: Width) -> usize {
    crate::api::plan_exec::fold_radius_cap(dims, width)
}

/// Bucket hinted domain extents into a coarse shape class: plans tuned
/// for cache-resident grids and for memory-bound grids must never share
/// a cache entry or a registry slot (the point of Fig. 8's storage-level
/// ladder). `None` (no hint) maps to the medium class the measured
/// tuner's probe domains default to.
pub fn shape_class(hint: Option<&[usize]>) -> &'static str {
    let Some(extents) = hint else { return "medium" };
    let points: usize = extents.iter().copied().filter(|&e| e > 0).product();
    match points {
        0..=16_384 => "tiny",
        16_385..=262_144 => "small",
        262_145..=4_194_304 => "medium",
        _ => "large",
    }
}

/// Default tessellation/split time block for `dims`-dimensional
/// patterns — the static seed the measured tuner searches around
/// (roughly the ratios of the paper's Table-1 hand-tuned values,
/// scaled to the harness's default domains).
pub fn default_time_block(dims: usize) -> usize {
    match dims {
        1 => 32,
        2 => 8,
        _ => 4,
    }
}

/// Resolve [`Tiling::Auto`] without probe runs: DLT must pair with
/// split tiling (the SDSL configuration); any other method gets
/// tessellate tiling with the [`default_time_block`] when worker
/// threads are available, and plain block-free sweeps single-threaded
/// (where tiling overhead cannot be amortized across cores).
pub fn auto_tiling(dims: usize, method: Method, threads: usize) -> Tiling {
    match method {
        Method::Dlt => Tiling::Split {
            time_block: default_time_block(dims),
        },
        _ if threads > 1 => Tiling::Tessellate {
            time_block: default_time_block(dims),
        },
        _ => Tiling::None,
    }
}

// ---------------------------------------------------------------------
// The measured-tuning hook.
// ---------------------------------------------------------------------

/// What [`Solver::compile`] asks an installed [`MeasuredTuner`] to
/// decide. Fields that the user fixed in the configuration arrive as
/// `Some(..)` and must be honored; `None` means "tune this".
#[derive(Debug, Clone)]
pub struct TuneRequest<'a> {
    /// The stencil pattern being compiled.
    pub pattern: &'a Pattern,
    /// The configured vector width (the tuner may probe narrower widths
    /// too — e.g. AVX-512 downclocking can make 4 lanes beat 8 — but
    /// must never widen beyond it).
    pub width: Width,
    /// Worker threads the compiled plan will run with.
    pub threads: usize,
    /// `Some` when the method was fixed by the user, `None` for
    /// [`Method::Auto`].
    pub method: Option<Method>,
    /// `Some` when the tiling was fixed by the user, `None` for
    /// [`Tiling::Auto`].
    pub tiling: Option<Tiling>,
    /// The extents from [`Solver::domain_hint`], if any.
    pub domain_hint: Option<&'a [usize]>,
    /// `Some` when the z-ring geometry was pinned by the user
    /// ([`Solver::ring3`]), `None` when the tuner may search the 3D
    /// ring axes (z-strip depth × x-slab width). Only meaningful for 3D
    /// register methods.
    pub ring3: Option<Ring3>,
    /// The requested mode — [`Tuning::Measured`] may probe,
    /// [`Tuning::CacheOnly`] must not.
    pub mode: Tuning,
}

/// A tuner's answer: the concrete configuration to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneDecision {
    /// Chosen vectorization method (never [`Method::Auto`]).
    pub method: Method,
    /// Chosen tiling (never [`Tiling::Auto`]).
    pub tiling: Tiling,
    /// Chosen vector width (≤ the requested width).
    pub width: Width,
    /// Chosen z-ring geometry for 3D register plans (`None` = let the
    /// static [`Ring3::auto`] default stand).
    pub ring3: Option<Ring3>,
    /// True when the decision came from the persistent cache without
    /// running a probe.
    pub from_cache: bool,
}

/// Why a tuner could not decide; mapped onto the typed
/// [`PlanError`](crate::PlanError) tuning variants by
/// [`Solver::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneFailure {
    /// [`Tuning::CacheOnly`] and the per-host cache has no entry under
    /// this key.
    CacheMiss {
        /// The cache key that missed.
        key: String,
    },
    /// The tuner ran but produced no decision (every candidate failed
    /// to compile, probe harness error, ...).
    Failed {
        /// Human-readable cause.
        reason: String,
    },
}

/// A measured autotuner [`Solver::compile`] can route
/// [`Tuning::Measured`]/[`Tuning::CacheOnly`] resolutions through.
///
/// Implementations must be cheap to call on a cache hit — `compile()`
/// consults the tuner on **every** measured compile, and the
/// compile-once/run-many contract only holds if warm lookups are
/// microseconds. `stencil-tune`'s `AutoTuner` is the canonical
/// implementation.
pub trait MeasuredTuner: Send + Sync {
    /// Decide a concrete (method, tiling, width) for `req`, probing if
    /// the mode allows it.
    fn tune(&self, req: &TuneRequest<'_>) -> Result<TuneDecision, TuneFailure>;
}

static TUNER: OnceLock<&'static dyn MeasuredTuner> = OnceLock::new();

/// Install the process-wide measured tuner (first installation wins,
/// like `log::set_logger`). Returns `false` when a tuner was already
/// installed — the existing one stays active, so libraries can call
/// this defensively.
///
/// The `'static` borrow keeps the registry allocation-free and makes
/// the ownership story explicit: the tuner must outlive every compile
/// (leak a `Box` for dynamically created tuners, as
/// `stencil_tune::install()` does).
pub fn install_tuner(t: &'static dyn MeasuredTuner) -> bool {
    TUNER.set(t).is_ok()
}

/// The installed measured tuner, if any.
pub fn installed_tuner() -> Option<&'static dyn MeasuredTuner> {
    TUNER.get().copied()
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning time block.
    pub time_block: usize,
    /// Probe throughput per candidate, in points/sec (same order as the
    /// candidate list).
    pub probe_rates: Vec<(usize, f64)>,
    /// Total time spent probing.
    pub spent: Duration,
}

/// Default candidate ladder for time blocks.
pub fn default_candidates() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64]
}

/// Tune the tessellation time block for a 1D problem of size `n`.
///
/// `probe_steps` inner steps per candidate (16 is plenty); the probe grid
/// is capped at 1/4 of `n` (min 4096) so tuning costs a fraction of one
/// real run.
///
/// # Panics
///
/// If `p` is not 1D or `method` cannot pair with tessellate tiling
/// (e.g. [`Method::Dlt`]) — probing time blocks only makes sense for
/// configurations `Solver::compile` accepts under `Tiling::Tessellate`.
pub fn tune_time_block_1d(
    p: &Pattern,
    method: Method,
    n: usize,
    threads: usize,
    probe_steps: usize,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty());
    let t0 = Instant::now();
    let probe_n = (n / 4).clamp(4096.min(n), n);
    let grid = Grid1D::from_fn(probe_n, |i| ((i * 31) % 17) as f64);
    // one plan per candidate — compiled once, reused by every probe —
    // all sharing a single worker pool
    let pool = PoolHandle::new(threads);
    let plans: Vec<_> = candidates
        .iter()
        .map(|&tb| {
            let plan = Solver::new(p.clone())
                .method(method)
                .tiling(Tiling::Tessellate { time_block: tb })
                .pool(pool.clone())
                .compile()
                .expect("tuning requires a tessellate-compatible method");
            (tb, plan)
        })
        .collect();
    let measure = |plan: &crate::Plan| -> f64 {
        let t = Instant::now();
        plan.run_1d(&grid, probe_steps)
            .expect("tuner pattern must be 1D");
        probe_n as f64 * probe_steps as f64 / t.elapsed().as_secs_f64()
    };
    let mut rates = Vec::with_capacity(candidates.len());
    for (tb, plan) in &plans {
        // warm-up + measure on the same compiled plan
        plan.run_1d(&grid, probe_steps.min(4))
            .expect("tuner pattern must be 1D");
        rates.push((*tb, measure(plan)));
    }
    // the runoff re-probe looks the winner's plan back up by time block
    let best = pick_best(&mut rates, |tb| {
        measure(&plans.iter().find(|(c, _)| *c == tb).unwrap().1)
    });
    TuneResult {
        time_block: best,
        probe_rates: rates,
        spent: t0.elapsed(),
    }
}

/// Tune the tessellation time block for a 2D problem of `ny x nx`.
///
/// # Panics
///
/// If `p` is not 2D or `method` cannot pair with tessellate tiling
/// (see [`tune_time_block_1d`]).
pub fn tune_time_block_2d(
    p: &Pattern,
    method: Method,
    (ny, nx): (usize, usize),
    threads: usize,
    probe_steps: usize,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty());
    let t0 = Instant::now();
    let (py, px) = (
        (ny / 2).clamp(64.min(ny), ny),
        (nx / 2).clamp(64.min(nx), nx),
    );
    let grid = Grid2D::from_fn(py, px, |y, x| ((y * 13 + x * 7) % 19) as f64);
    let pool = PoolHandle::new(threads);
    let plans: Vec<_> = candidates
        .iter()
        .map(|&tb| {
            let plan = Solver::new(p.clone())
                .method(method)
                .tiling(Tiling::Tessellate { time_block: tb })
                .pool(pool.clone())
                .compile()
                .expect("tuning requires a tessellate-compatible method");
            (tb, plan)
        })
        .collect();
    let measure = |plan: &crate::Plan| -> f64 {
        let t = Instant::now();
        plan.run_2d(&grid, probe_steps)
            .expect("tuner pattern must be 2D");
        (py * px) as f64 * probe_steps as f64 / t.elapsed().as_secs_f64()
    };
    let mut rates = Vec::with_capacity(candidates.len());
    for (tb, plan) in &plans {
        plan.run_2d(&grid, probe_steps.min(4))
            .expect("tuner pattern must be 2D");
        rates.push((*tb, measure(plan)));
    }
    let best = pick_best(&mut rates, |tb| {
        measure(&plans.iter().find(|(c, _)| *c == tb).unwrap().1)
    });
    TuneResult {
        time_block: best,
        probe_rates: rates,
        spent: t0.elapsed(),
    }
}

/// Pick the best candidate: re-probe the top two and keep the winner
/// (single probes are noisy; a runoff between the leaders is cheap and
/// fixes most mis-rankings).
fn pick_best(rates: &mut [(usize, f64)], mut reprobe: impl FnMut(usize) -> f64) -> usize {
    rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    if rates.len() == 1 {
        return rates[0].0;
    }
    let (a, b) = (rates[0].0, rates[1].0);
    let (ra, rb) = (reprobe(a), reprobe(b));
    if rb > ra {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn tuner_returns_a_candidate_1d() {
        let cands = [2usize, 8, 16];
        let r = tune_time_block_1d(
            &kernels::heat1d(),
            Method::Folded { m: 2 },
            100_000,
            2,
            8,
            &cands,
        );
        assert!(cands.contains(&r.time_block));
        assert_eq!(r.probe_rates.len(), 3);
        assert!(r.probe_rates.iter().all(|&(_, rate)| rate > 0.0));
    }

    #[test]
    fn tuner_returns_a_candidate_2d() {
        let cands = [2usize, 4];
        let r = tune_time_block_2d(
            &kernels::box2d9p(),
            Method::Folded { m: 2 },
            (128, 128),
            2,
            4,
            &cands,
        );
        assert!(cands.contains(&r.time_block));
    }

    #[test]
    fn tuned_solver_still_correct() {
        // after tuning, a solve with the chosen tb matches the scalar
        // reference — tuning must not change semantics
        let p = kernels::heat1d();
        let r = tune_time_block_1d(&p, Method::MultipleLoads, 50_000, 2, 6, &[4, 16]);
        let g = Grid1D::from_fn(2048, |i| ((i * 7) % 23) as f64);
        let want = Solver::new(p.clone())
            .method(Method::Scalar)
            .compile()
            .unwrap()
            .run_1d(&g, 12)
            .unwrap();
        let got = Solver::new(p)
            .method(Method::MultipleLoads)
            .tiling(Tiling::Tessellate {
                time_block: r.time_block,
            })
            .threads(2)
            .compile()
            .unwrap()
            .run_1d(&g, 12)
            .unwrap();
        assert!(stencil_grid::max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12);
    }

    #[test]
    fn single_candidate_shortcut() {
        let r = tune_time_block_1d(
            &kernels::heat1d(),
            Method::MultipleLoads,
            20_000,
            1,
            4,
            &[8],
        );
        assert_eq!(r.time_block, 8);
    }

    #[test]
    fn auto_prefers_folding_when_profitable() {
        // every linear Table-1 kernel has profitability > θ at m = 2 and
        // a folded radius within bounds at the native width
        for p in [kernels::heat1d(), kernels::heat2d(), kernels::box2d9p()] {
            let m = auto_method(&p, Width::native_max(), Tiling::None);
            assert_eq!(m, Method::Folded { m: 2 }, "pts={}", p.points());
        }
    }

    #[test]
    fn auto_respects_width_bounds_1d() {
        // at one lane the folded radius 2 of heat1d m=2 cannot fit; auto
        // must degrade to a supported method, not an invalid plan
        let m = auto_method(&kernels::heat1d(), Width::W1, Tiling::None);
        assert_ne!(m, Method::Folded { m: 2 });
        let plan = Solver::new(kernels::heat1d())
            .method(Method::Auto)
            .width(Width::W1)
            .compile()
            .unwrap();
        assert_ne!(plan.method(), Method::Auto);
    }

    #[test]
    fn auto_tiling_pairs_dlt_with_split_and_threads_with_tessellate() {
        assert!(matches!(
            auto_tiling(1, Method::Dlt, 1),
            Tiling::Split { .. }
        ));
        assert!(matches!(
            auto_tiling(2, Method::Folded { m: 2 }, 8),
            Tiling::Tessellate { .. }
        ));
        assert_eq!(auto_tiling(2, Method::MultipleLoads, 1), Tiling::None);
        // the resolved pair always compiles
        for threads in [1, 4] {
            let plan = Solver::new(kernels::heat2d())
                .method(Method::Auto)
                .tiling(Tiling::Auto)
                .threads(threads)
                .compile()
                .unwrap();
            assert_ne!(plan.method(), Method::Auto);
            assert_ne!(plan.tiling(), Tiling::Auto);
        }
    }

    #[test]
    fn measured_without_tuner_is_a_typed_error() {
        // core never installs a tuner itself, so inside this crate the
        // measured modes must surface TunerUnavailable (the facade's
        // stencil-tune crate is what installs one)
        let err = Solver::new(kernels::heat1d())
            .method(Method::Auto)
            .tuning(Tuning::Measured)
            .compile()
            .unwrap_err();
        assert!(matches!(
            err,
            crate::PlanError::TunerUnavailable {
                mode: Tuning::Measured
            }
        ));
        // ...but a fully concrete configuration has nothing to tune and
        // compiles under any mode
        let plan = Solver::new(kernels::heat1d())
            .method(Method::MultipleLoads)
            .tuning(Tuning::Measured)
            .compile()
            .unwrap();
        assert_eq!(plan.method(), Method::MultipleLoads);
    }

    #[test]
    fn auto_honors_tiling_constraints() {
        let p = kernels::heat1d();
        assert_eq!(
            auto_method(&p, Width::W4, Tiling::Split { time_block: 4 }),
            Method::Dlt
        );
        assert_eq!(
            auto_method(
                &kernels::heat2d(),
                Width::W4,
                Tiling::Spatial { block: (8, 8) }
            ),
            Method::MultipleLoads
        );
    }
}
