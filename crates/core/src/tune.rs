//! Parameter autotuning — the paper's declared future work ("the
//! performance is sensitive to the stencil parameters, significant
//! efforts are required in automatic tuning and this will be done
//! separately", §4.1).
//!
//! The search space here is the one Table 1 hand-tunes: the tessellation
//! *time block* (and, for spatial blocking, the tile edge). Probe runs on
//! a shrunken copy of the problem rank the candidates, then the best
//! candidate is re-validated on a second probe to damp timing noise.

use crate::api::{Method, Tiling};
use crate::pattern::Pattern;
use crate::Solver;
use std::time::{Duration, Instant};
use stencil_grid::{Grid1D, Grid2D};

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning time block.
    pub time_block: usize,
    /// Probe throughput per candidate, in points/sec (same order as the
    /// candidate list).
    pub probe_rates: Vec<(usize, f64)>,
    /// Total time spent probing.
    pub spent: Duration,
}

/// Default candidate ladder for time blocks.
pub fn default_candidates() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64]
}

/// Tune the tessellation time block for a 1D problem of size `n`.
///
/// `probe_steps` inner steps per candidate (16 is plenty); the probe grid
/// is capped at 1/4 of `n` (min 4096) so tuning costs a fraction of one
/// real run.
pub fn tune_time_block_1d(
    p: &Pattern,
    method: Method,
    n: usize,
    threads: usize,
    probe_steps: usize,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty());
    let t0 = Instant::now();
    let probe_n = (n / 4).clamp(4096.min(n), n);
    let grid = Grid1D::from_fn(probe_n, |i| ((i * 31) % 17) as f64);
    let mut rates = Vec::with_capacity(candidates.len());
    for &tb in candidates {
        let solver = Solver::new(p.clone())
            .method(method)
            .tiling(Tiling::Tessellate { time_block: tb })
            .threads(threads);
        // warm-up + measure
        let _ = solver.run_1d(&grid, probe_steps.min(4));
        let t = Instant::now();
        let _ = solver.run_1d(&grid, probe_steps);
        let rate = probe_n as f64 * probe_steps as f64 / t.elapsed().as_secs_f64();
        rates.push((tb, rate));
    }
    let best = pick_best(&mut rates, |tb| {
        let solver = Solver::new(p.clone())
            .method(method)
            .tiling(Tiling::Tessellate { time_block: tb })
            .threads(threads);
        let t = Instant::now();
        let _ = solver.run_1d(&grid, probe_steps);
        probe_n as f64 * probe_steps as f64 / t.elapsed().as_secs_f64()
    });
    TuneResult {
        time_block: best,
        probe_rates: rates,
        spent: t0.elapsed(),
    }
}

/// Tune the tessellation time block for a 2D problem of `ny x nx`.
pub fn tune_time_block_2d(
    p: &Pattern,
    method: Method,
    (ny, nx): (usize, usize),
    threads: usize,
    probe_steps: usize,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty());
    let t0 = Instant::now();
    let (py, px) = (
        (ny / 2).clamp(64.min(ny), ny),
        (nx / 2).clamp(64.min(nx), nx),
    );
    let grid = Grid2D::from_fn(py, px, |y, x| ((y * 13 + x * 7) % 19) as f64);
    let mut rates = Vec::with_capacity(candidates.len());
    for &tb in candidates {
        let solver = Solver::new(p.clone())
            .method(method)
            .tiling(Tiling::Tessellate { time_block: tb })
            .threads(threads);
        let _ = solver.run_2d(&grid, probe_steps.min(4));
        let t = Instant::now();
        let _ = solver.run_2d(&grid, probe_steps);
        let rate = (py * px) as f64 * probe_steps as f64 / t.elapsed().as_secs_f64();
        rates.push((tb, rate));
    }
    let best = pick_best(&mut rates, |tb| {
        let solver = Solver::new(p.clone())
            .method(method)
            .tiling(Tiling::Tessellate { time_block: tb })
            .threads(threads);
        let t = Instant::now();
        let _ = solver.run_2d(&grid, probe_steps);
        (py * px) as f64 * probe_steps as f64 / t.elapsed().as_secs_f64()
    });
    TuneResult {
        time_block: best,
        probe_rates: rates,
        spent: t0.elapsed(),
    }
}

/// Pick the best candidate: re-probe the top two and keep the winner
/// (single probes are noisy; a runoff between the leaders is cheap and
/// fixes most mis-rankings).
fn pick_best(rates: &mut [(usize, f64)], mut reprobe: impl FnMut(usize) -> f64) -> usize {
    rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    if rates.len() == 1 {
        return rates[0].0;
    }
    let (a, b) = (rates[0].0, rates[1].0);
    let (ra, rb) = (reprobe(a), reprobe(b));
    if rb > ra {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn tuner_returns_a_candidate_1d() {
        let cands = [2usize, 8, 16];
        let r = tune_time_block_1d(
            &kernels::heat1d(),
            Method::Folded { m: 2 },
            100_000,
            2,
            8,
            &cands,
        );
        assert!(cands.contains(&r.time_block));
        assert_eq!(r.probe_rates.len(), 3);
        assert!(r.probe_rates.iter().all(|&(_, rate)| rate > 0.0));
    }

    #[test]
    fn tuner_returns_a_candidate_2d() {
        let cands = [2usize, 4];
        let r = tune_time_block_2d(
            &kernels::box2d9p(),
            Method::Folded { m: 2 },
            (128, 128),
            2,
            4,
            &cands,
        );
        assert!(cands.contains(&r.time_block));
    }

    #[test]
    fn tuned_solver_still_correct() {
        // after tuning, a solve with the chosen tb matches the scalar
        // reference — tuning must not change semantics
        let p = kernels::heat1d();
        let r = tune_time_block_1d(&p, Method::MultipleLoads, 50_000, 2, 6, &[4, 16]);
        let g = Grid1D::from_fn(2048, |i| ((i * 7) % 23) as f64);
        let want = Solver::new(p.clone()).method(Method::Scalar).run_1d(&g, 12);
        let got = Solver::new(p)
            .method(Method::MultipleLoads)
            .tiling(Tiling::Tessellate {
                time_block: r.time_block,
            })
            .threads(2)
            .run_1d(&g, 12);
        assert!(stencil_grid::max_abs_diff(want.as_slice(), got.as_slice()) < 1e-12);
    }

    #[test]
    fn single_candidate_shortcut() {
        let r = tune_time_block_1d(
            &kernels::heat1d(),
            Method::MultipleLoads,
            20_000,
            1,
            4,
            &[8],
        );
        assert_eq!(r.time_block, 8);
    }
}
