//! Linear regression for counterpart reuse (paper §3.5, Eq. 7–9).
//!
//! The paper generalizes folding to arbitrary stencils by expressing the
//! `n`-th counterpart as a linear combination of already-computed
//! counterparts plus a bias, `c_n = ω·c + b_n`, with the parameters found
//! by "a machine learning algorithm" minimizing the op-collect. The
//! objective (Eq. 9) is an ordinary least-squares problem over the
//! counterparts' λ vectors, so the exact optimum is closed-form: solve
//! the normal equations. This module is that solver — dense Gaussian
//! elimination with partial pivoting, no external linear algebra.

/// Tolerance under which a residual counts as an exact representation.
pub const EXACT_TOL: f64 = 1e-9;

/// Solve the square system `A x = b` in place (Gaussian elimination with
/// partial pivoting). `a` is row-major `n x n`. Returns `None` when the
/// matrix is singular to working precision.
pub fn solve_linear(mut a: Vec<f64>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    for col in 0..n {
        // partial pivot
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in col + 1..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let d = a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col * n + c] * x[c];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

/// Result of a least-squares fit `y ~ X w`.
#[derive(Debug, Clone)]
pub struct Fit {
    /// Fitted coefficients, one per column of `X`.
    pub omega: Vec<f64>,
    /// Maximum absolute residual `max |X w - y|`.
    pub max_residual: f64,
}

impl Fit {
    /// True when the fit reproduces `y` exactly (to [`EXACT_TOL`]).
    pub fn is_exact(&self) -> bool {
        self.max_residual <= EXACT_TOL
    }

    /// Coefficients that are numerically nonzero.
    pub fn nonzero_terms(&self) -> usize {
        self.omega.iter().filter(|w| w.abs() > EXACT_TOL).count()
    }
}

/// Least squares: minimize `||X w - y||_2` where `cols` are the columns
/// of `X` (each of length `y.len()`). Returns `None` if the normal
/// equations are singular (e.g. linearly dependent columns).
pub fn least_squares(cols: &[Vec<f64>], y: &[f64]) -> Option<Fit> {
    let k = cols.len();
    if k == 0 {
        let max_residual = y.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        return Some(Fit {
            omega: vec![],
            max_residual,
        });
    }
    let n = y.len();
    for c in cols {
        assert_eq!(c.len(), n, "column length mismatch");
    }
    // normal equations: (X^T X) w = X^T y
    let mut xtx = vec![0.0; k * k];
    let mut xty = vec![0.0; k];
    for i in 0..k {
        for j in 0..k {
            xtx[i * k + j] = dot(&cols[i], &cols[j]);
        }
        xty[i] = dot(&cols[i], y);
    }
    let omega = solve_linear(xtx, xty)?;
    // residual
    let mut max_residual = 0.0f64;
    for row in 0..n {
        let mut pred = 0.0;
        for (j, c) in cols.iter().enumerate() {
            pred += omega[j] * c[row];
        }
        max_residual = max_residual.max((pred - y[row]).abs());
    }
    Some(Fit {
        omega,
        max_residual,
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Scale relation: if `y = k * x` exactly, return `k` (paper's simple
/// case, e.g. λ(2) = 2 λ(1) for the 2D9P folding matrix).
pub fn proportionality(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let mut k: Option<f64> = None;
    for (&xv, &yv) in x.iter().zip(y) {
        if xv.abs() <= EXACT_TOL {
            if yv.abs() > EXACT_TOL {
                return None;
            }
            continue;
        }
        let ratio = yv / xv;
        match k {
            None => k = Some(ratio),
            Some(prev) if (prev - ratio).abs() > EXACT_TOL => return None,
            _ => {}
        }
    }
    k.or(Some(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_linear(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_needs_pivoting() {
        // leading zero forces a row swap
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_linear(a, vec![5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_3x3() {
        // A = [[2,1,0],[1,3,1],[0,1,2]], x = [1,2,3] -> b = [4,10,8]
        let a = vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let x = solve_linear(a, vec![4.0, 10.0, 8.0]).unwrap();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn ls_exact_combination() {
        let c1 = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        let c2 = vec![0.0, 1.0, 0.0, 1.0, 0.0];
        let y: Vec<f64> = c1.iter().zip(&c2).map(|(a, b)| 3.0 * a - 2.0 * b).collect();
        let fit = least_squares(&[c1, c2], &y).unwrap();
        assert!(fit.is_exact());
        assert!((fit.omega[0] - 3.0).abs() < 1e-9);
        assert!((fit.omega[1] + 2.0).abs() < 1e-9);
        assert_eq!(fit.nonzero_terms(), 2);
    }

    #[test]
    fn ls_inexact_reports_residual() {
        let c1 = vec![1.0, 0.0];
        let y = vec![1.0, 1.0]; // cannot be represented
        let fit = least_squares(&[c1], &y).unwrap();
        assert!(!fit.is_exact());
        assert!(fit.max_residual > 0.5);
    }

    #[test]
    fn ls_empty_basis() {
        let fit = least_squares(&[], &[1.0, -2.0]).unwrap();
        assert_eq!(fit.max_residual, 2.0);
        assert!(!fit.is_exact());
    }

    #[test]
    fn proportionality_detects_scale() {
        // the paper's example: λ(2) = 2 λ(1), λ(3) = 3 λ(1)
        let l1 = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        let l2: Vec<f64> = l1.iter().map(|x| 2.0 * x).collect();
        let l3: Vec<f64> = l1.iter().map(|x| 3.0 * x).collect();
        assert_eq!(proportionality(&l1, &l2), Some(2.0));
        assert_eq!(proportionality(&l1, &l3), Some(3.0));
        assert_eq!(proportionality(&l1, &[1.0, 2.0, 3.0, 2.0, 2.0]), None);
    }

    #[test]
    fn proportionality_with_zeros() {
        let x = vec![0.0, 1.0, 0.0];
        assert_eq!(proportionality(&x, &[0.0, 5.0, 0.0]), Some(5.0));
        assert_eq!(proportionality(&x, &[1.0, 5.0, 0.0]), None);
        assert_eq!(proportionality(&[0.0, 0.0], &[0.0, 0.0]), Some(0.0));
    }
}
