//! Plain spatial blocking: one time step at a time, space cut into
//! cache-sized tiles processed in parallel. No temporal reuse — the
//! baseline tiling the temporal schemes are measured against, and the
//! parallelization used for the block-free multicore rows.

use crate::tile::RawPair;
use core::ops::Range;
use stencil_grid::{Grid2D, Grid3D, PingPong};
use stencil_runtime::{parallel_for, ThreadPool};

/// Parallel spatially-blocked 2D run: `steps` inner steps, tiles of
/// `by x bx` cells over the interior `[band, n-band)`.
pub fn run_2d<K>(
    pool: &ThreadPool,
    pp: &mut PingPong<Grid2D>,
    band: usize,
    (by, bx): (usize, usize),
    steps: usize,
    kernel: &K,
) where
    K: Fn(&Grid2D, &mut Grid2D, Range<usize>, Range<usize>) + Sync,
{
    let (ny, nx) = (pp.current().ny(), pp.current().nx());
    let (ylo, yhi) = (band, ny - band);
    let (xlo, xhi) = (band, nx - band);
    let tiles_y = (yhi - ylo).div_ceil(by).max(1);
    let tiles_x = (xhi - xlo).div_ceil(bx).max(1);
    for _step in 0..steps {
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        parallel_for(pool, tiles_y * tiles_x, 1, &|tr| {
            for tile in tr {
                let (ty, tx) = (tile / tiles_x, tile % tiles_x);
                let yr = (ylo + ty * by)..(ylo + (ty + 1) * by).min(yhi);
                let xr = (xlo + tx * bx)..(xlo + (tx + 1) * bx).min(xhi);
                if yr.is_empty() || xr.is_empty() {
                    continue;
                }
                // SAFETY: tiles partition the interior (disjoint writes);
                // all tiles read the same quiescent source level.
                let (src, dst) = unsafe { pair.src_dst(0) };
                kernel(src, dst, yr, xr);
            }
        });
        // both_mut is re-taken each step, so src is always the latest
        // level and dst the scratch; one swap advances the pair.
        pp.swap();
    }
}

/// Parallel spatially-blocked 3D run (tiles over z and y, full x rows).
pub fn run_3d<K>(
    pool: &ThreadPool,
    pp: &mut PingPong<Grid3D>,
    band: usize,
    (bz, by): (usize, usize),
    steps: usize,
    kernel: &K,
) where
    K: Fn(&Grid3D, &mut Grid3D, Range<usize>, Range<usize>, Range<usize>) + Sync,
{
    let (nz, ny, nx) = (pp.current().nz(), pp.current().ny(), pp.current().nx());
    let (zlo, zhi) = (band, nz - band);
    let (ylo, yhi) = (band, ny - band);
    let tiles_z = (zhi - zlo).div_ceil(bz).max(1);
    let tiles_y = (yhi - ylo).div_ceil(by).max(1);
    for _step in 0..steps {
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        parallel_for(pool, tiles_z * tiles_y, 1, &|tr| {
            for tile in tr {
                let (tz, ty) = (tile / tiles_y, tile % tiles_y);
                let zr = (zlo + tz * bz)..(zlo + (tz + 1) * bz).min(zhi);
                let yr = (ylo + ty * by)..(ylo + (ty + 1) * by).min(yhi);
                if zr.is_empty() || yr.is_empty() {
                    continue;
                }
                // SAFETY: disjoint tiles, quiescent source.
                let (src, dst) = unsafe { pair.src_dst(0) };
                kernel(src, dst, zr, yr, band..nx - band);
            }
        });
        pp.swap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{multiload, scalar};
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::NativeF64x4;

    #[test]
    fn spatial_2d_matches_plain() {
        let p = kernels::box2d9p();
        let g = Grid2D::from_fn(37, 45, |y, x| ((y * 3 + x * 11) % 23) as f64);
        let steps = 4;
        let mut want = PingPong::new(g.clone());
        scalar::sweep_2d(&mut want, &p, steps);
        let pc = p.clone();
        let pool = ThreadPool::new(4);
        let mut pp = PingPong::new(g);
        run_2d(
            &pool,
            &mut pp,
            1,
            (8, 16),
            steps,
            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                multiload::step_range_2d::<NativeF64x4>(s, d, &pc, ys, xs)
            },
        );
        assert!(max_abs_diff(&want.current().to_dense(), &pp.current().to_dense()) < 1e-12);
    }

    #[test]
    fn spatial_3d_matches_plain() {
        let p = kernels::heat3d();
        let g = Grid3D::from_fn(13, 15, 17, |z, y, x| ((z + y * 2 + x * 3) % 7) as f64);
        let steps = 3;
        let mut want = PingPong::new(g.clone());
        scalar::sweep_3d(&mut want, &p, steps);
        let pc = p.clone();
        let pool = ThreadPool::new(4);
        let mut pp = PingPong::new(g);
        run_3d(
            &pool,
            &mut pp,
            1,
            (4, 4),
            steps,
            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                multiload::step_range_3d::<NativeF64x4>(s, d, &pc, zs, ys, xs)
            },
        );
        assert!(max_abs_diff(&want.current().to_dense(), &pp.current().to_dense()) < 1e-12);
    }
}
