//! Split tiling over DLT layout — the "SDSL" baseline (Henretty et al.).
//!
//! SDSL vectorizes with the global dimension-lifted transpose and blocks
//! time with split tiling (upright/inverted triangles; nested in 1D,
//! hybrid for higher dimensions). We reproduce both properties:
//!
//! * **1D**: the lifted space `p in [0, cols)` is a *ring* — original
//!   position `l*cols + (cols-1)` neighbours `(l+1)*cols + 0`, i.e.
//!   column `cols-1` feeds column `0` one lane down. Split tiles are
//!   triangles on that ring; the wrap tile handles the lane seam through
//!   the same shifted-vector fix-up the plain DLT sweep uses. Because a
//!   p-tile touches `vl` memory segments `cols` elements apart, its cache
//!   footprint is `vl` spread stripes — the locality penalty the paper
//!   attributes to DLT-constrained blocking.
//! * **2D/3D (hybrid)**: DLT along x (per row), split-tiling triangles
//!   along the outermost dimension, full sweeps in between — Henretty's
//!   hybrid tiling shape.

use crate::exec::dlt::step_dlt_range;
use crate::pattern::Pattern;
use crate::tile::RawPair;
use stencil_grid::layout::DltLayout;
use stencil_grid::{AlignedBuf, Grid1D, Grid2D, PingPong};
use stencil_runtime::{parallel_for, ThreadPool};
use stencil_simd::SimdF64;

/// Ring-tile geometry over the lifted dimension.
#[derive(Debug, Clone, Copy)]
struct RingTiling {
    cols: usize,
    r: usize,
    tb: usize,
    w: usize,
    ntiles: usize,
}

impl RingTiling {
    fn new(cols: usize, r: usize, tb_wanted: usize) -> Self {
        // Need w = 2*r*tb <= cols; clamp tb accordingly.
        let tb = tb_wanted.max(1).min((cols / (2 * r)).max(1));
        let w = 2 * r * tb;
        let ntiles = (cols / w).max(1);
        Self {
            cols,
            r,
            tb,
            w,
            ntiles,
        }
    }

    /// Triangle tile `k`'s p-range at inner step `t` (non-wrapping).
    fn triangle(&self, k: usize, t: usize) -> (usize, usize) {
        let shrink = self.r * (t + 1);
        let lo = k * self.w + shrink;
        let base_hi = if k == self.ntiles - 1 {
            self.cols
        } else {
            (k + 1) * self.w
        };
        let hi = base_hi.saturating_sub(shrink);
        (lo, hi.max(lo))
    }

    /// Inverted tile at ring boundary `b` (0..ntiles; 0 is the wrap
    /// boundary): p-range at step `t`, possibly extending past `cols`
    /// (positions wrap modulo `cols` in the step kernel).
    fn inverted(&self, b: usize, t: usize) -> (usize, usize) {
        let grow = self.r * (t + 1);
        let c = if b == 0 { self.cols } else { b * self.w };
        // widths differ at the last (ragged) tile; cap by neighbours
        (c - grow, c + grow)
    }
}

/// SDSL-style 1D sweep: DLT transform, split-tiled `t` steps, transform
/// back. `grid.len()` must be a multiple of `V::LANES`.
pub fn sweep_1d<V: SimdF64>(
    pool: &ThreadPool,
    grid: &Grid1D,
    p: &Pattern,
    tb: usize,
    t_steps: usize,
) -> Grid1D {
    assert_eq!(p.dims(), 1);
    let n = grid.len();
    let vl = V::LANES;
    assert_eq!(n % vl, 0, "SDSL (DLT) needs n divisible by vl");
    let layout = DltLayout::new(n, vl);
    let cols = layout.cols();
    let r = p.radius();
    let taps = p.weights().to_vec();

    let mut a = AlignedBuf::zeroed(n);
    layout.to_dlt::<V>(grid.as_slice(), a.as_mut_slice());
    let b = a.clone();
    let mut pp = PingPong::from_pair(a, b);

    let mut remaining = t_steps;
    while remaining > 0 {
        let ring = RingTiling::new(cols, r, tb.min(remaining));
        let tb_round = ring.tb.min(remaining);
        let ring = RingTiling::new(cols, r, tb_round);
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        // stage 1: triangles
        parallel_for(pool, ring.ntiles, 1, &|tiles| {
            for k in tiles {
                for t in 0..tb_round {
                    let (lo, hi) = ring.triangle(k, t);
                    if lo >= hi {
                        continue;
                    }
                    // SAFETY: triangle ranges are disjoint across tiles
                    // at every step pair; reads stay within r.
                    let (src, dst) = unsafe { pair.src_dst(t) };
                    step_dlt_range::<V>(src.as_slice(), dst.as_mut_slice(), &taps, cols, lo, hi);
                }
            }
        });
        // stage 2: inverted triangles (incl. the wrap tile b = 0)
        parallel_for(pool, ring.ntiles, 1, &|tiles| {
            for bidx in tiles {
                for t in 0..tb_round {
                    let (lo, hi) = ring.inverted(bidx, t);
                    if lo >= hi {
                        continue;
                    }
                    // SAFETY: inverted ranges are disjoint across
                    // boundaries (half-width <= w/2).
                    let (src, dst) = unsafe { pair.src_dst(t) };
                    step_dlt_range::<V>(src.as_slice(), dst.as_mut_slice(), &taps, cols, lo, hi);
                }
            }
        });
        for _ in 0..tb_round {
            pp.swap();
        }
        remaining -= tb_round;
    }

    let mut out = Grid1D::zeros(n);
    layout.from_dlt::<V>(pp.current().as_slice(), out.as_mut_slice());
    out
}

/// One 2D step over DLT-lifted rows: `ys` rows, all lifted columns.
/// `src`/`dst` hold each row in DLT layout (`nx = cols * vl`).
fn step_dlt_rows_2d<V: SimdF64>(
    src: &Grid2D,
    dst: &mut Grid2D,
    p: &Pattern,
    ys: core::ops::Range<usize>,
) {
    let vl = V::LANES;
    let r = p.radius();
    let side = p.side();
    let w = p.weights();
    let nx = src.nx();
    let cols = nx / vl;
    let stride = src.stride();
    let s = src.as_slice();
    let d = dst.as_mut_slice();
    for y in ys {
        for q in 0..cols {
            let mut acc = V::zero();
            for dy in 0..side {
                let row = &s[(y + dy - r) * stride..(y + dy - r) * stride + nx];
                for dx in 0..side {
                    let wv = w[dy * side + dx];
                    if wv == 0.0 {
                        continue;
                    }
                    let v = dlt_vec_at::<V>(row, cols, q as isize + dx as isize - r as isize);
                    acc = v.mul_add(V::splat(wv), acc);
                }
            }
            // SAFETY: q*vl + vl <= nx <= stride
            unsafe { acc.store(d.as_mut_ptr().add(y * stride + q * vl)) };
            // Dirichlet fix-up on original x-edges
            if q < r {
                d[y * stride + q * vl] = s[y * stride + q * vl];
            }
            if q >= cols - r {
                d[y * stride + q * vl + vl - 1] = s[y * stride + q * vl + vl - 1];
            }
        }
    }
}

#[inline(always)]
fn dlt_vec_at<V: SimdF64>(row: &[f64], cols: usize, q: isize) -> V {
    let c = cols as isize;
    if q >= 0 && q < c {
        // SAFETY: in-bounds by construction.
        unsafe { V::load(row.as_ptr().add(q as usize * V::LANES)) }
    } else if q < 0 {
        let base = unsafe { V::load(row.as_ptr().add((q + c) as usize * V::LANES)) };
        base.shift_in_left(V::zero())
    } else {
        let base = unsafe { V::load(row.as_ptr().add((q - c) as usize * V::LANES)) };
        base.shift_in_right(V::zero())
    }
}

/// SDSL-style 2D sweep: DLT along x, split-tiling triangles along y.
/// `grid.nx()` must be a multiple of `V::LANES`.
pub fn sweep_2d<V: SimdF64>(
    pool: &ThreadPool,
    grid: &Grid2D,
    p: &Pattern,
    tb: usize,
    t_steps: usize,
) -> Grid2D {
    assert_eq!(p.dims(), 2);
    let (ny, nx) = (grid.ny(), grid.nx());
    let vl = V::LANES;
    assert_eq!(nx % vl, 0, "hybrid SDSL needs nx divisible by vl");
    let r = p.radius();
    let row_layout = DltLayout::new(nx, vl);

    // lift every row
    let mut a = Grid2D::zeros(ny, nx);
    for y in 0..ny {
        row_layout.to_dlt::<V>(grid.row(y), a.row_mut(y));
    }
    let b = a.clone();
    let mut pp = PingPong::from_pair(a, b);

    let mut remaining = t_steps;
    while remaining > 0 {
        let tbr = crate::tile::DimTiling::max_tb(ny, r, r, tb).min(remaining);
        let dimy = crate::tile::DimTiling::new(ny, r, r, tbr);
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        for stage_inv in [false, true] {
            let tiles = dimy.count(stage_inv);
            parallel_for(pool, tiles, 1, &|tr| {
                for i in tr {
                    for t in 0..tbr {
                        let yr = dimy.range(stage_inv, i, t);
                        if yr.is_empty() {
                            continue;
                        }
                        // SAFETY: y-ranges disjoint within a stage.
                        let (src, dst) = unsafe { pair.src_dst(t) };
                        step_dlt_rows_2d::<V>(src, dst, p, yr);
                    }
                }
            });
        }
        for _ in 0..tbr {
            pp.swap();
        }
        remaining -= tbr;
    }

    // un-lift
    let lifted = pp.into_current();
    let mut out = Grid2D::zeros(ny, nx);
    for y in 0..ny {
        row_layout.from_dlt::<V>(lifted.row(y), out.row_mut(y));
    }
    out
}

/// One 3D step over DLT-lifted rows: planes `zs`, all rows, all lifted
/// columns.
fn step_dlt_rows_3d<V: SimdF64>(
    src: &stencil_grid::Grid3D,
    dst: &mut stencil_grid::Grid3D,
    p: &Pattern,
    zs: core::ops::Range<usize>,
) {
    let vl = V::LANES;
    let r = p.radius();
    let side = p.side();
    let w = p.weights();
    let (ny, nx) = (src.ny(), src.nx());
    let cols = nx / vl;
    let (sy, sz) = (src.stride_y(), src.stride_z());
    let s = src.as_slice();
    let d = dst.as_mut_slice();
    for z in zs {
        for y in r..ny - r {
            for q in 0..cols {
                let mut acc = V::zero();
                for dz in 0..side {
                    for dy in 0..side {
                        let base = (z + dz - r) * sz + (y + dy - r) * sy;
                        let row = &s[base..base + nx];
                        for dx in 0..side {
                            let wv = w[(dz * side + dy) * side + dx];
                            if wv == 0.0 {
                                continue;
                            }
                            let v =
                                dlt_vec_at::<V>(row, cols, q as isize + dx as isize - r as isize);
                            acc = v.mul_add(V::splat(wv), acc);
                        }
                    }
                }
                let off = z * sz + y * sy + q * vl;
                // SAFETY: q*vl + vl <= nx <= stride_y
                unsafe { acc.store(d.as_mut_ptr().add(off)) };
                if q < r {
                    d[off] = s[off];
                }
                if q >= cols - r {
                    d[off + vl - 1] = s[off + vl - 1];
                }
            }
        }
        // frozen y-boundary rows keep their values in both arrays
    }
}

/// SDSL-style 3D sweep: DLT along x, split-tiling triangles along z,
/// full y sweeps. `grid.nx()` must be a multiple of `V::LANES`.
pub fn sweep_3d<V: SimdF64>(
    pool: &ThreadPool,
    grid: &stencil_grid::Grid3D,
    p: &Pattern,
    tb: usize,
    t_steps: usize,
) -> stencil_grid::Grid3D {
    assert_eq!(p.dims(), 3);
    let (nz, ny, nx) = (grid.nz(), grid.ny(), grid.nx());
    let vl = V::LANES;
    assert_eq!(nx % vl, 0, "hybrid SDSL needs nx divisible by vl");
    let r = p.radius();
    let row_layout = DltLayout::new(nx, vl);

    let mut a = stencil_grid::Grid3D::zeros(nz, ny, nx);
    for z in 0..nz {
        for y in 0..ny {
            row_layout.to_dlt::<V>(grid.row(z, y), a.row_mut(z, y));
        }
    }
    let b = a.clone();
    let mut pp = PingPong::from_pair(a, b);

    let mut remaining = t_steps;
    while remaining > 0 {
        let tbr = crate::tile::DimTiling::max_tb(nz, r, r, tb).min(remaining);
        let dimz = crate::tile::DimTiling::new(nz, r, r, tbr);
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        for stage_inv in [false, true] {
            let tiles = dimz.count(stage_inv);
            parallel_for(pool, tiles, 1, &|tr| {
                for i in tr {
                    for t in 0..tbr {
                        let zr = dimz.range(stage_inv, i, t);
                        if zr.is_empty() {
                            continue;
                        }
                        // SAFETY: z-ranges disjoint within a stage.
                        let (src, dst) = unsafe { pair.src_dst(t) };
                        step_dlt_rows_3d::<V>(src, dst, p, zr);
                    }
                }
            });
        }
        for _ in 0..tbr {
            pp.swap();
        }
        remaining -= tbr;
    }

    let lifted = pp.into_current();
    let mut out = stencil_grid::Grid3D::zeros(nz, ny, nx);
    for z in 0..nz {
        for y in 0..ny {
            row_layout.from_dlt::<V>(lifted.row(z, y), out.row_mut(z, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar;
    use crate::kernels;
    use stencil_grid::max_abs_diff;
    use stencil_simd::{NativeF64x4, NativeF64x8};

    fn pool() -> ThreadPool {
        ThreadPool::new(6)
    }

    #[test]
    fn sdsl_1d_matches_scalar() {
        for p in [kernels::heat1d(), kernels::d1p5()] {
            for n in [128usize, 256, 512] {
                let g = Grid1D::from_fn(n, |i| ((i * 23) % 17) as f64 * 0.6);
                let steps = 10;
                let mut want = PingPong::new(g.clone());
                scalar::sweep_1d(&mut want, &p, steps);
                let out = sweep_1d::<NativeF64x4>(&pool(), &g, &p, 3, steps);
                assert!(
                    max_abs_diff(want.current().as_slice(), out.as_slice()) < 1e-12,
                    "x4 n={n} pts={}",
                    p.points()
                );
            }
        }
    }

    #[test]
    fn sdsl_1d_avx512_width() {
        let p = kernels::heat1d();
        let n = 512;
        let g = Grid1D::from_fn(n, |i| (i as f64 * 0.07).cos());
        let steps = 8;
        let mut want = PingPong::new(g.clone());
        scalar::sweep_1d(&mut want, &p, steps);
        let out = sweep_1d::<NativeF64x8>(&pool(), &g, &p, 4, steps);
        assert!(max_abs_diff(want.current().as_slice(), out.as_slice()) < 1e-12);
    }

    #[test]
    fn sdsl_1d_single_tile_ring() {
        // cols so small only one ring tile fits
        let p = kernels::heat1d();
        let n = 64; // cols = 16 with vl=4
        let g = Grid1D::from_fn(n, |i| (i % 9) as f64);
        let steps = 6;
        let mut want = PingPong::new(g.clone());
        scalar::sweep_1d(&mut want, &p, steps);
        let out = sweep_1d::<NativeF64x4>(&pool(), &g, &p, 8, steps);
        assert!(max_abs_diff(want.current().as_slice(), out.as_slice()) < 1e-12);
    }

    #[test]
    fn sdsl_3d_matches_scalar() {
        for p in [kernels::heat3d(), kernels::box3d27p()] {
            let g = stencil_grid::Grid3D::from_fn(15, 13, 32, |z, y, x| {
                ((z * 5 + y * 11 + x * 3) % 17) as f64
            });
            let steps = 5;
            let mut want = PingPong::new(g.clone());
            scalar::sweep_3d(&mut want, &p, steps);
            let out = sweep_3d::<NativeF64x4>(&pool(), &g, &p, 2, steps);
            assert!(
                max_abs_diff(&want.current().to_dense(), &out.to_dense()) < 1e-12,
                "pts={}",
                p.points()
            );
        }
    }

    #[test]
    fn sdsl_2d_matches_scalar() {
        for p in [kernels::heat2d(), kernels::box2d9p()] {
            let g = Grid2D::from_fn(41, 64, |y, x| ((y * 29 + x * 7) % 31) as f64);
            let steps = 6;
            let mut want = PingPong::new(g.clone());
            scalar::sweep_2d(&mut want, &p, steps);
            let out = sweep_2d::<NativeF64x4>(&pool(), &g, &p, 3, steps);
            assert!(
                max_abs_diff(&want.current().to_dense(), &out.to_dense()) < 1e-12,
                "pts={}",
                p.points()
            );
        }
    }
}
