//! Tiling layer: tessellate tiling (§3.4), split tiling (the SDSL
//! stand-in) and plain spatial blocking.
//!
//! ## Tessellation geometry
//!
//! Time blocking runs in *rounds* of `tb` (possibly folded) steps. Within
//! a round, each dimension is cut into tiles of width `w = 2 * reff * tb`
//! (`reff` = radius advanced per inner step: `m * r` for an m-folded
//! kernel). Per dimension a cell has a *triangle profile*
//! `tau(i) = floor(dist_to_tile_edge / reff)` capped at `tb`; the stages
//! then update, at inner step `t`:
//!
//! * triangle ranges `[L + reff*(t+1), R - reff*(t+1))` — shrinking;
//! * inverted ranges `[B - reff*(t+1), B + reff*(t+1))` — growing around
//!   each interior tile boundary `B`.
//!
//! A d-dimensional stage is a choice of triangle/inverted per dimension
//! (`2^d` stages, barriers between; the paper's d+1-stage recombination
//! is a scheduling refinement of the same tessellation — see DESIGN.md).
//! Stage `s` updates, at step `t`, the product of its per-dim ranges;
//! every cell is updated exactly `tb` times per round with no redundant
//! computation, and all cross-tile reads within a stage touch only
//! quiescent data — the correctness tests in `tessellate.rs` verify
//! bit-equality against plain sweeps under heavy thread counts.
//!
//! Domain edges: ranges are clamped to the Dirichlet interior
//! `[band, n - band)`, and tiles touching a domain edge do not shrink on
//! that side (their reads hit frozen boundary cells).

pub mod spatial;
pub mod split;
pub mod tessellate;

use core::ops::Range;

/// Per-dimension tessellation geometry for one round.
///
/// Tile boundaries are anchored to **global** coordinates: a dimension
/// that models the local window `[origin, origin + n)` of a larger
/// domain places its tile edges at global multiples of the tile width
/// `w`, not at multiples of the window start. Two windows of the same
/// domain therefore agree on every interior tile they share — the
/// property that lets the serving layer shard register-pipeline plans
/// under tessellate tiling bit-exactly. `origin = 0` (the
/// [`DimTiling::new`] constructor) reproduces the classic whole-domain
/// geometry unchanged.
#[derive(Debug, Clone, Copy)]
pub struct DimTiling {
    /// Grid extent in this dimension (local window length).
    pub n: usize,
    /// Dirichlet band width (frozen cells at each end of the window).
    pub band: usize,
    /// Radius advanced per inner step (`m * r` for folded kernels).
    pub reff: usize,
    /// Inner steps per round.
    pub tb: usize,
    /// Tile width `2 * reff * tb`.
    pub w: usize,
    /// Number of triangle tiles intersecting the window.
    pub ntri: usize,
    /// Global coordinate of local index 0 (tile-phase anchor).
    pub origin: usize,
    /// Global index of the first tile intersecting the window.
    k0: usize,
}

impl DimTiling {
    /// Build the whole-domain geometry (`origin = 0`); `tb` is clamped
    /// so at least one tile fits.
    pub fn new(n: usize, band: usize, reff: usize, tb: usize) -> Self {
        Self::new_at(n, band, reff, tb, 0)
    }

    /// Build the geometry of a local window starting at global
    /// coordinate `origin` — tile phase is derived from global
    /// coordinates, never from the window start.
    pub fn new_at(n: usize, band: usize, reff: usize, tb: usize, origin: usize) -> Self {
        assert!(reff >= 1 && tb >= 1);
        assert!(n > 2 * band, "grid smaller than its Dirichlet bands");
        let w = 2 * reff * tb;
        let k0 = origin / w;
        let ntri = ((origin + n).div_ceil(w) - k0).max(1);
        Self {
            n,
            band,
            reff,
            tb,
            w,
            ntri,
            origin,
            k0,
        }
    }

    /// Largest `tb` such that the tile width `2*reff*tb` does not exceed
    /// the interior extent (so profiles are well-formed).
    pub fn max_tb(n: usize, band: usize, reff: usize, wanted: usize) -> usize {
        let interior = n - 2 * band;
        wanted.max(1).min((interior / (2 * reff)).max(1))
    }

    /// Triangle tile `k`'s update range at inner step `t` (may be
    /// empty), in local window coordinates. Tiles at window edges do not
    /// shrink on the edge side (the window edge is a frozen band —
    /// either the true domain edge or a shard's halo boundary).
    pub fn triangle_range(&self, k: usize, t: usize) -> Range<usize> {
        debug_assert!(k < self.ntri && t < self.tb);
        let shrink = self.reff * (t + 1);
        let lo = if k == 0 {
            self.band
        } else {
            // (k0 + k) * w > origin for k >= 1, so the subtraction is safe
            ((self.k0 + k) * self.w - self.origin + shrink).max(self.band)
        };
        let hi = if k == self.ntri - 1 {
            self.n - self.band
        } else {
            ((self.k0 + k + 1) * self.w - self.origin)
                .saturating_sub(shrink)
                .min(self.n - self.band)
        };
        lo..hi.max(lo)
    }

    /// Inverted tile at interior boundary `b` (1..ntri): update range at
    /// inner step `t`, in local window coordinates.
    pub fn inverted_range(&self, b: usize, t: usize) -> Range<usize> {
        debug_assert!(b >= 1 && b < self.ntri && t < self.tb);
        let grow = self.reff * (t + 1);
        let c = (self.k0 + b) * self.w - self.origin;
        let lo = c.saturating_sub(grow).max(self.band);
        let hi = (c + grow).min(self.n - self.band);
        lo..hi.max(lo)
    }

    /// Number of inverted tiles (interior boundaries).
    pub fn ninv(&self) -> usize {
        self.ntri - 1
    }

    /// Range for stage-kind `inv` and tile index `i` at step `t`.
    pub fn range(&self, inv: bool, i: usize, t: usize) -> Range<usize> {
        if inv {
            self.inverted_range(i + 1, t)
        } else {
            self.triangle_range(i, t)
        }
    }

    /// Tile count for stage-kind `inv`.
    pub fn count(&self, inv: bool) -> usize {
        if inv {
            self.ninv()
        } else {
            self.ntri
        }
    }
}

/// Raw two-buffer handle for tile-parallel Jacobi rounds.
///
/// Tiles running concurrently need simultaneous access to both time
/// levels with disjoint write regions; this wrapper hands out raw
/// pointers under the tiling layer's region-disjointness contract
/// (see module docs), keeping all mutation inside documented unsafe.
pub(crate) struct RawPair<G> {
    src0: *mut G,
    dst0: *mut G,
}

// SAFETY: tiles write disjoint regions; stage barriers order everything
// else (contract documented on the tiling drivers).
unsafe impl<G> Send for RawPair<G> {}
unsafe impl<G> Sync for RawPair<G> {}

impl<G> RawPair<G> {
    /// Wrap `(current, scratch)` mutable references.
    pub fn new(cur: &mut G, scratch: &mut G) -> Self {
        Self {
            src0: cur as *mut G,
            dst0: scratch as *mut G,
        }
    }

    /// `(src, dst)` for inner step `t` (parity alternates).
    ///
    /// # Safety
    /// Caller must only write regions no other thread touches during the
    /// same stage, per the tessellation disjointness argument.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn src_dst(&self, t: usize) -> (&G, &mut G) {
        if t.is_multiple_of(2) {
            (&*self.src0, &mut *self.dst0)
        } else {
            (&*self.dst0, &mut *self.src0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_profiles_match_paper_fig7() {
        // W = 8, tb = 4, reff = 1: per-cell update counts from triangles
        // must be the staircase min(dist, tb) for interior tiles.
        let d = DimTiling::new(24, 1, 1, 4);
        assert_eq!(d.w, 8);
        let mut count = [0usize; 24];
        for k in 0..d.ntri {
            for t in 0..d.tb {
                for i in d.triangle_range(k, t) {
                    count[i] += 1;
                }
            }
        }
        // middle tile [8, 16): profile 0,1,2,3,3,2,1,0 relative to edges
        assert_eq!(&count[8..16], &[0, 1, 2, 3, 3, 2, 1, 0]);
    }

    #[test]
    fn triangles_plus_inverted_update_everything_tb_times() {
        for (n, band, reff, tb) in [(40usize, 1, 1, 4), (64, 2, 2, 3), (33, 1, 1, 2)] {
            let d = DimTiling::new(n, band, reff, tb);
            let mut count = vec![0usize; n];
            for k in 0..d.ntri {
                for t in 0..tb {
                    for i in d.triangle_range(k, t) {
                        count[i] += 1;
                    }
                }
            }
            for b in 1..d.ntri {
                for t in 0..tb {
                    for i in d.inverted_range(b, t) {
                        count[i] += 1;
                    }
                }
            }
            for (i, &c) in count.iter().enumerate() {
                let want = if i < band || i >= n - band { 0 } else { tb };
                assert_eq!(c, want, "n={n} band={band} reff={reff} tb={tb} i={i}");
            }
        }
    }

    #[test]
    fn no_write_overlap_within_stage_at_any_step_pair() {
        // Disjointness of concurrent tiles: triangle tiles never overlap
        // at any (t, t') pair, and inverted tiles never overlap.
        let d = DimTiling::new(48, 1, 1, 4);
        for k1 in 0..d.ntri {
            for k2 in k1 + 1..d.ntri {
                for t1 in 0..d.tb {
                    for t2 in 0..d.tb {
                        let a = d.triangle_range(k1, t1);
                        let b = d.triangle_range(k2, t2);
                        assert!(a.end <= b.start || b.end <= a.start);
                    }
                }
            }
        }
        for b1 in 1..d.ntri {
            for b2 in b1 + 1..d.ntri {
                for t1 in 0..d.tb {
                    for t2 in 0..d.tb {
                        let a = d.inverted_range(b1, t1);
                        let b = d.inverted_range(b2, t2);
                        assert!(a.end <= b.start || b.end <= a.start);
                    }
                }
            }
        }
    }

    #[test]
    fn origin_anchored_windows_update_everything_tb_times() {
        // the tb-updates-per-cell invariant must hold for any window
        // origin, including origins inside a tile
        for (n, band, reff, tb, origin) in [
            (40usize, 1usize, 1usize, 4usize, 8usize),
            (40, 1, 1, 4, 5),
            (64, 2, 2, 3, 23),
            (33, 1, 1, 2, 100),
            (48, 2, 2, 2, 7),
        ] {
            let d = DimTiling::new_at(n, band, reff, tb, origin);
            let mut count = vec![0usize; n];
            for k in 0..d.ntri {
                for t in 0..tb {
                    for i in d.triangle_range(k, t) {
                        count[i] += 1;
                    }
                }
            }
            for b in 1..d.ntri {
                for t in 0..tb {
                    for i in d.inverted_range(b, t) {
                        count[i] += 1;
                    }
                }
            }
            for (i, &c) in count.iter().enumerate() {
                let want = if i < band || i >= n - band { 0 } else { tb };
                assert_eq!(c, want, "n={n} origin={origin} i={i}");
            }
        }
    }

    #[test]
    fn origin_anchored_interior_tiles_match_whole_domain() {
        // a window [o, o+n) of a larger domain reproduces, translated,
        // every tile range that is fully interior to both — tile phase
        // comes from global coordinates, not the window start
        let big = DimTiling::new(96, 1, 1, 3); // w = 6
        for o in [18usize, 21, 30] {
            let n = 48;
            let win = DimTiling::new_at(n, 1, 1, 3, o);
            assert_eq!(win.w, big.w);
            for t in 0..3 {
                for k in 1..win.ntri - 1 {
                    let kg = o / win.w + k;
                    if kg == 0 || kg >= big.ntri - 1 {
                        continue;
                    }
                    let wr = win.triangle_range(k, t);
                    let br = big.triangle_range(kg, t);
                    // compare only ranges unclamped by either edge band
                    if wr.start > win.band
                        && wr.end < win.n - win.band
                        && br.start > big.band
                        && br.end < big.n - big.band
                    {
                        assert_eq!(
                            (wr.start + o, wr.end + o),
                            (br.start, br.end),
                            "o={o} k={k} t={t}"
                        );
                    }
                }
                for b in 1..win.ntri {
                    let bg = o / win.w + b;
                    let wr = win.inverted_range(b, t);
                    let br = big.inverted_range(bg, t);
                    if wr.start > win.band && wr.end < win.n - win.band {
                        assert_eq!(
                            (wr.start + o, wr.end + o),
                            (br.start, br.end),
                            "o={o} b={b} t={t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn max_tb_keeps_tiles_inside() {
        assert_eq!(DimTiling::max_tb(100, 1, 1, 10), 10);
        assert_eq!(DimTiling::max_tb(100, 1, 1, 1000), 49);
        assert_eq!(DimTiling::max_tb(20, 2, 2, 8), 4);
        assert!(DimTiling::max_tb(6, 2, 1, 5) >= 1);
    }

    #[test]
    fn raw_pair_parity() {
        let mut a = vec![1.0f64];
        let mut b = vec![2.0f64];
        let pair = RawPair::new(&mut a, &mut b);
        unsafe {
            let (s0, d0) = pair.src_dst(0);
            assert_eq!(s0[0], 1.0);
            d0[0] = 5.0;
            let (s1, _) = pair.src_dst(1);
            assert_eq!(s1[0], 5.0);
        }
    }
}
