//! Tessellate tiling drivers (1D/2D/3D), generic over the inner kernel.
//!
//! Each driver advances a ping-pong pair by `steps` *inner* steps (an
//! inner step is whatever the kernel does — one time level for plain
//! kernels, `m` levels for folded ones), in rounds of at most `tb` steps.
//! Within a round the stages run under pool barriers; tiles within a
//! stage run in parallel, each executing its whole time loop (the
//! temporal reuse that makes tessellation a cache-blocking scheme).
//!
//! Kernel contract (the tiles' disjointness proof depends on it): a call
//! `kernel(src, dst, region)` writes exactly `region` of `dst` and reads
//! only within `reff` of `region` in `src`.

use crate::tile::{DimTiling, RawPair};
use core::ops::Range;
use stencil_grid::{Grid1D, Grid2D, Grid3D, PingPong};
use stencil_runtime::{parallel_for, ThreadPool};

/// Tessellated 1D run: advances `pp` by `steps` inner steps.
///
/// `reff`: radius of one inner step; `band`: Dirichlet band width;
/// `tb`: requested inner steps per round; `kernel(src, dst, lo, hi)`.
pub fn run_1d<K>(
    pool: &ThreadPool,
    pp: &mut PingPong<Grid1D>,
    reff: usize,
    band: usize,
    tb: usize,
    steps: usize,
    kernel: &K,
) where
    K: Fn(&[f64], &mut [f64], usize, usize) + Sync,
{
    let n = pp.current().len();
    let mut remaining = steps;
    while remaining > 0 {
        let tb_round = DimTiling::max_tb(n, band, reff, tb).min(remaining);
        let dim = DimTiling::new(n, band, reff, tb_round);
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        for stage_inv in [false, true] {
            let tiles = dim.count(stage_inv);
            parallel_for(pool, tiles, 1, &|tile_range: Range<usize>| {
                for i in tile_range {
                    for t in 0..tb_round {
                        let r = dim.range(stage_inv, i, t);
                        if r.is_empty() {
                            continue;
                        }
                        // SAFETY: within a stage, tile write regions are
                        // disjoint across all step pairs (tested in
                        // tile::tests) and reads stay within reff of the
                        // region, touching only quiescent or own data.
                        let (src, dst) = unsafe { pair.src_dst(t) };
                        kernel(src.as_slice(), dst.as_mut_slice(), r.start, r.end);
                    }
                }
            });
        }
        // Boundary cells must keep their frozen values in both arrays;
        // they were never written, and both arrays already agree there.
        for _ in 0..tb_round {
            pp.swap();
        }
        remaining -= tb_round;
    }
}

/// Tessellated 2D run. Stages: TT, VT (x-valley), TV (y-valley), VV.
pub fn run_2d<K>(
    pool: &ThreadPool,
    pp: &mut PingPong<Grid2D>,
    reff: usize,
    band: usize,
    tb: usize,
    steps: usize,
    kernel: &K,
) where
    K: Fn(&Grid2D, &mut Grid2D, Range<usize>, Range<usize>) + Sync,
{
    run_2d_at(pool, pp, reff, band, tb, steps, 0, kernel)
}

/// [`run_2d`] over a local window whose outer (y) axis starts at global
/// coordinate `origin_y`: tile phase is anchored to global coordinates,
/// so two windows of one domain agree on every tile they share (the
/// bit-exact-sharding contract; see [`DimTiling::new_at`]).
#[allow(clippy::too_many_arguments)] // origin rides along the driver's parameter set
pub fn run_2d_at<K>(
    pool: &ThreadPool,
    pp: &mut PingPong<Grid2D>,
    reff: usize,
    band: usize,
    tb: usize,
    steps: usize,
    origin_y: usize,
    kernel: &K,
) where
    K: Fn(&Grid2D, &mut Grid2D, Range<usize>, Range<usize>) + Sync,
{
    let (ny, nx) = (pp.current().ny(), pp.current().nx());
    let mut remaining = steps;
    while remaining > 0 {
        let tb_round = DimTiling::max_tb(ny, band, reff, tb)
            .min(DimTiling::max_tb(nx, band, reff, tb))
            .min(remaining);
        let dy = DimTiling::new_at(ny, band, reff, tb_round, origin_y);
        let dx = DimTiling::new(nx, band, reff, tb_round);
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        for stage in 0..4u32 {
            let (inv_y, inv_x) = (stage & 2 != 0, stage & 1 != 0);
            let (cy, cx) = (dy.count(inv_y), dx.count(inv_x));
            let tiles = cy * cx;
            parallel_for(pool, tiles, 1, &|tile_range: Range<usize>| {
                for tile in tile_range {
                    let (iy, ix) = (tile / cx, tile % cx);
                    for t in 0..tb_round {
                        let yr = dy.range(inv_y, iy, t);
                        let xr = dx.range(inv_x, ix, t);
                        if yr.is_empty() || xr.is_empty() {
                            continue;
                        }
                        // SAFETY: per-dimension disjointness makes the
                        // product regions disjoint within a stage; reads
                        // stay within reff (kernel contract).
                        let (src, dst) = unsafe { pair.src_dst(t) };
                        kernel(src, dst, yr, xr);
                    }
                }
            });
        }
        for _ in 0..tb_round {
            pp.swap();
        }
        remaining -= tb_round;
    }
}

/// Tessellated 3D run (8 stages: every triangle/inverted choice per dim).
pub fn run_3d<K>(
    pool: &ThreadPool,
    pp: &mut PingPong<Grid3D>,
    reff: usize,
    band: usize,
    tb: usize,
    steps: usize,
    kernel: &K,
) where
    K: Fn(&Grid3D, &mut Grid3D, Range<usize>, Range<usize>, Range<usize>) + Sync,
{
    run_3d_at(pool, pp, reff, band, tb, steps, 0, kernel)
}

/// [`run_3d`] over a local window whose outer (z) axis starts at global
/// coordinate `origin_z` (see [`run_2d_at`]).
#[allow(clippy::too_many_arguments)] // origin rides along the driver's parameter set
pub fn run_3d_at<K>(
    pool: &ThreadPool,
    pp: &mut PingPong<Grid3D>,
    reff: usize,
    band: usize,
    tb: usize,
    steps: usize,
    origin_z: usize,
    kernel: &K,
) where
    K: Fn(&Grid3D, &mut Grid3D, Range<usize>, Range<usize>, Range<usize>) + Sync,
{
    let (nz, ny, nx) = (pp.current().nz(), pp.current().ny(), pp.current().nx());
    let mut remaining = steps;
    while remaining > 0 {
        let tb_round = DimTiling::max_tb(nz, band, reff, tb)
            .min(DimTiling::max_tb(ny, band, reff, tb))
            .min(DimTiling::max_tb(nx, band, reff, tb))
            .min(remaining);
        let dz = DimTiling::new_at(nz, band, reff, tb_round, origin_z);
        let dy = DimTiling::new(ny, band, reff, tb_round);
        let dx = DimTiling::new(nx, band, reff, tb_round);
        let (cur, scratch) = pp.both_mut();
        let pair = RawPair::new(cur, scratch);
        for stage in 0..8u32 {
            let (inv_z, inv_y, inv_x) = (stage & 4 != 0, stage & 2 != 0, stage & 1 != 0);
            let (cz, cy, cx) = (dz.count(inv_z), dy.count(inv_y), dx.count(inv_x));
            let tiles = cz * cy * cx;
            parallel_for(pool, tiles, 1, &|tile_range: Range<usize>| {
                for tile in tile_range {
                    let (iz, rem) = (tile / (cy * cx), tile % (cy * cx));
                    let (iy, ix) = (rem / cx, rem % cx);
                    for t in 0..tb_round {
                        let zr = dz.range(inv_z, iz, t);
                        let yr = dy.range(inv_y, iy, t);
                        let xr = dx.range(inv_x, ix, t);
                        if zr.is_empty() || yr.is_empty() || xr.is_empty() {
                            continue;
                        }
                        // SAFETY: same disjointness argument, per dim.
                        let (src, dst) = unsafe { pair.src_dst(t) };
                        kernel(src, dst, zr, yr, xr);
                    }
                }
            });
        }
        for _ in 0..tb_round {
            pp.swap();
        }
        remaining -= tb_round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{folded, multiload, scalar};
    use crate::folding::fold;
    use crate::kernels;
    use crate::pattern::Pattern;
    use stencil_grid::max_abs_diff;
    use stencil_simd::NativeF64x4;

    fn pool() -> ThreadPool {
        ThreadPool::new(8)
    }

    #[test]
    fn tess_1d_scalar_kernel_matches_plain_sweep() {
        let p = kernels::heat1d();
        let n = 257;
        let steps = 11;
        let g = Grid1D::from_fn(n, |i| ((i * 37) % 19) as f64 * 0.4);
        let mut want = PingPong::new(g.clone());
        scalar::sweep_1d(&mut want, &p, steps);
        let taps = p.weights().to_vec();
        let mut pp = PingPong::new(g);
        run_1d(
            &pool(),
            &mut pp,
            1,
            1,
            4,
            steps,
            &|s: &[f64], d: &mut [f64], lo, hi| scalar::step_range_1d(s, d, &taps, lo, hi),
        );
        assert_eq!(pp.steps(), steps);
        assert!(max_abs_diff(want.current().as_slice(), pp.current().as_slice()) < 1e-12);
    }

    #[test]
    fn tess_1d_vector_kernel_and_radius2() {
        let p = kernels::d1p5();
        let n = 400;
        let steps = 9;
        let g = Grid1D::from_fn(n, |i| (i as f64 * 0.05).sin());
        let mut want = PingPong::new(g.clone());
        scalar::sweep_1d(&mut want, &p, steps);
        let taps = p.weights().to_vec();
        let mut pp = PingPong::new(g);
        run_1d(
            &pool(),
            &mut pp,
            2,
            2,
            5,
            steps,
            &|s: &[f64], d: &mut [f64], lo, hi| {
                multiload::step_range_1d::<NativeF64x4>(s, d, &taps, lo, hi)
            },
        );
        assert!(max_abs_diff(want.current().as_slice(), pp.current().as_slice()) < 1e-12);
    }

    #[test]
    fn tess_1d_folded_squares_kernel() {
        // folded m=2 kernel within tessellation: reff = 2, band = 2
        let p = kernels::heat1d();
        let f = fold(&p, 2);
        let n = 512;
        let folded_steps = 8; // = 16 time levels
        let g = Grid1D::from_fn(n, |i| ((i * 13) % 31) as f64);
        let mut want = PingPong::new(g.clone());
        scalar::sweep_1d(&mut want, &f, folded_steps);
        let taps = f.weights().to_vec();
        let mut pp = PingPong::new(g);
        run_1d(
            &pool(),
            &mut pp,
            2,
            2,
            3,
            folded_steps,
            &|s: &[f64], d: &mut [f64], lo, hi| {
                folded::step_squares_range_1d::<NativeF64x4>(s, d, &taps, lo, hi)
            },
        );
        assert!(max_abs_diff(want.current().as_slice(), pp.current().as_slice()) < 1e-12);
    }

    #[test]
    fn tess_2d_matches_plain_sweep() {
        for p in [kernels::heat2d(), kernels::box2d9p(), kernels::gb()] {
            let g = Grid2D::from_fn(49, 61, |y, x| ((y * 11 + x * 3) % 23) as f64);
            let steps = 7;
            let mut want = PingPong::new(g.clone());
            scalar::sweep_2d(&mut want, &p, steps);
            let pc = p.clone();
            let mut pp = PingPong::new(g);
            run_2d(
                &pool(),
                &mut pp,
                1,
                1,
                3,
                steps,
                &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                    multiload::step_range_2d::<NativeF64x4>(s, d, &pc, ys, xs)
                },
            );
            assert!(
                max_abs_diff(&want.current().to_dense(), &pp.current().to_dense()) < 1e-12,
                "pts={}",
                p.points()
            );
        }
    }

    #[test]
    fn tess_2d_folded_kernel_matches_scalar_folded() {
        let p = kernels::box2d9p();
        let f = fold(&p, 2);
        let k = folded::FoldedKernel::new(&p, 2);
        let g = Grid2D::from_fn(53, 47, |y, x| ((y * 7 + x * 13) % 29) as f64 * 0.3);
        let folded_steps = 5;
        let mut want = PingPong::new(g.clone());
        scalar::sweep_2d(&mut want, &f, folded_steps);
        let mut pp = PingPong::new(g);
        run_2d(
            &pool(),
            &mut pp,
            2,
            2,
            2,
            folded_steps,
            &|s: &Grid2D, d: &mut Grid2D, ys, xs| {
                folded::step_range_2d::<NativeF64x4>(&k, s, d, ys, xs)
            },
        );
        assert!(max_abs_diff(&want.current().to_dense(), &pp.current().to_dense()) < 1e-10);
    }

    #[test]
    fn tess_3d_matches_plain_sweep() {
        let p = kernels::heat3d();
        let g = Grid3D::from_fn(17, 19, 23, |z, y, x| ((z * 3 + y * 5 + x * 7) % 13) as f64);
        let steps = 5;
        let mut want = PingPong::new(g.clone());
        scalar::sweep_3d(&mut want, &p, steps);
        let pc = p.clone();
        let mut pp = PingPong::new(g);
        run_3d(
            &pool(),
            &mut pp,
            1,
            1,
            2,
            steps,
            &|s: &Grid3D, d: &mut Grid3D, zs, ys, xs| {
                multiload::step_range_3d::<NativeF64x4>(s, d, &pc, zs, ys, xs)
            },
        );
        assert!(max_abs_diff(&want.current().to_dense(), &pp.current().to_dense()) < 1e-12);
    }

    #[test]
    fn tess_many_threads_stress() {
        // race detector by repetition: high thread count, tiny tiles
        let p = kernels::heat1d();
        let taps = p.weights().to_vec();
        let n = 1000;
        let g = Grid1D::from_fn(n, |i| (i % 97) as f64);
        let mut want = PingPong::new(g.clone());
        scalar::sweep_1d(&mut want, &p, 24);
        let big_pool = ThreadPool::new(16);
        for _ in 0..5 {
            let mut pp = PingPong::new(g.clone());
            run_1d(
                &big_pool,
                &mut pp,
                1,
                1,
                6,
                24,
                &|s: &[f64], d: &mut [f64], lo, hi| scalar::step_range_1d(s, d, &taps, lo, hi),
            );
            assert!(max_abs_diff(want.current().as_slice(), pp.current().as_slice()) < 1e-12);
        }
    }

    #[test]
    fn tess_handles_tb_larger_than_grid_allows() {
        // requested tb too big: driver clamps it per round
        let p = kernels::heat1d();
        let taps = p.weights().to_vec();
        let g = Grid1D::from_fn(24, |i| i as f64);
        let mut want = PingPong::new(g.clone());
        scalar::sweep_1d(&mut want, &p, 10);
        let mut pp = PingPong::new(g);
        run_1d(
            &pool(),
            &mut pp,
            1,
            1,
            1000,
            10,
            &|s: &[f64], d: &mut [f64], lo, hi| scalar::step_range_1d(s, d, &taps, lo, hi),
        );
        assert!(max_abs_diff(want.current().as_slice(), pp.current().as_slice()) < 1e-12);
    }

    #[test]
    fn tess_2d_life_nonlinear_kernel() {
        use crate::exec::life;
        let g = life::random_soup(40, 44, 3);
        let steps = 6;
        // reference: plain generations
        let want = life::sweep::<NativeF64x4>(&g, steps);
        let mut pp = PingPong::new(g);
        run_2d(
            &pool(),
            &mut pp,
            1,
            1,
            3,
            steps,
            &|s: &Grid2D, d: &mut Grid2D, ys, xs| life::step_range::<NativeF64x4>(s, d, ys, xs),
        );
        assert!(max_abs_diff(&want.to_dense(), &pp.current().to_dense()) < 1e-15);
    }

    /// Property-style: random shapes and step counts, scalar kernel.
    #[test]
    fn tess_2d_randomized_shapes() {
        let p = Pattern::new_2d(1, &[0.05, 0.1, 0.05, 0.1, 0.4, 0.1, 0.05, 0.1, 0.05]);
        for (ny, nx, steps, tb) in [
            (20usize, 35usize, 3usize, 2usize),
            (31, 22, 8, 5),
            (64, 17, 6, 4),
        ] {
            let g = Grid2D::from_fn(ny, nx, |y, x| ((y * 17 + x * 29) % 41) as f64);
            let mut want = PingPong::new(g.clone());
            scalar::sweep_2d(&mut want, &p, steps);
            let pc = p.clone();
            let mut pp = PingPong::new(g);
            run_2d(
                &pool(),
                &mut pp,
                1,
                1,
                tb,
                steps,
                &|s: &Grid2D, d: &mut Grid2D, ys, xs| scalar::step_range_2d(s, d, &pc, ys, xs),
            );
            assert!(
                max_abs_diff(&want.current().to_dense(), &pp.current().to_dense()) < 1e-12,
                "ny={ny} nx={nx} steps={steps} tb={tb}"
            );
        }
    }
}
