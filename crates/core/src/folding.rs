//! Temporal computation folding: the folding matrix Λ (paper §3.2–3.3).
//!
//! Applying a linear stencil `m` times is itself a linear stencil whose
//! weight tensor is the `m`-fold self-convolution of the original — the
//! paper's *folding matrix* of reassigned weights λ. This module computes
//! it and verifies the paper's worked example (λ1..λ6 of Fig. 4 for the
//! 2D9P box with m = 2).

use crate::pattern::Pattern;

/// Discrete convolution of two weight tensors of equal dimensionality:
/// the pattern of "apply `b`, then `a`". Radius adds.
pub fn convolve(a: &Pattern, b: &Pattern) -> Pattern {
    assert_eq!(a.dims(), b.dims(), "dimensionality mismatch");
    let dims = a.dims();
    let rr = a.radius() + b.radius();
    let side = 2 * rr + 1;
    let mut w = vec![0.0; side.pow(dims as u32)];
    let (ra, rb, r) = (a.radius() as isize, b.radius() as isize, rr as isize);
    // iterate all offset pairs; unused dims pinned to 0
    let range = |active: bool, rad: isize| if active { -rad..=rad } else { 0..=0 };
    for za in range(dims >= 3, ra) {
        for ya in range(dims >= 2, ra) {
            for xa in -ra..=ra {
                let wa = a.at(za, ya, xa);
                if wa == 0.0 {
                    continue;
                }
                for zb in range(dims >= 3, rb) {
                    for yb in range(dims >= 2, rb) {
                        for xb in -rb..=rb {
                            let wb = b.at(zb, yb, xb);
                            if wb == 0.0 {
                                continue;
                            }
                            let (dz, dy, dx) = (za + zb, ya + yb, xa + xb);
                            let mut idx = (dx + r) as usize;
                            if dims >= 2 {
                                idx += (dy + r) as usize * side;
                            }
                            if dims >= 3 {
                                idx += (dz + r) as usize * side * side;
                            }
                            w[idx] += wa * wb;
                        }
                    }
                }
            }
        }
    }
    Pattern::new(dims, rr, w)
}

/// The folding matrix Λ for unrolling factor `m`: the stencil that
/// advances a grid directly by `m` time steps. `fold(p, 1)` is `p`
/// itself; radius grows to `m * r`.
pub fn fold(p: &Pattern, m: usize) -> Pattern {
    assert!(m >= 1, "unrolling factor must be >= 1");
    let mut acc = p.clone();
    for _ in 1..m {
        acc = convolve(&acc, p);
    }
    acc
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::kernels;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    /// Paper Fig. 4(b): the folding matrix of the symmetric 9-point box
    /// stencil (corner w1, edge w2, center w3) with m = 2.
    #[test]
    fn folding_matrix_matches_paper_lambdas() {
        let (w1, w2, w3) = (0.05, 0.1, 0.4);
        let p = Pattern::new_2d(1, &[w1, w2, w1, w2, w3, w2, w1, w2, w1]);
        let f = fold(&p, 2);
        assert_eq!(f.radius(), 2);
        let l1 = w1 * w1;
        let l2 = 2.0 * w1 * w2;
        let l3 = 2.0 * w1 * w1 + w2 * w2;
        let l4 = 2.0 * (w1 * w3 + w2 * w2);
        let l5 = 2.0 * (2.0 * w1 * w2 + w2 * w3);
        let l6 = 2.0 * (2.0 * w1 * w1 + w2 * w2) + 2.0 * w2 * w2 + w3 * w3;
        assert_close(f.at(0, -2, -2), l1);
        assert_close(f.at(0, -2, -1), l2);
        assert_close(f.at(0, -2, 0), l3);
        assert_close(f.at(0, -1, -1), l4);
        assert_close(f.at(0, -1, 0), l5);
        assert_close(f.at(0, 0, 0), l6);
        // full symmetry of the folded matrix
        assert!(f.is_symmetric());
    }

    /// The all-w box stencil's 2-step folding matrix is the rank-1 outer
    /// product w^2 * [1,2,3,2,1] x [1,2,3,2,1] (Fig. 5's folding matrix).
    #[test]
    fn box2d9p_fold_is_separable() {
        let w = 1.0 / 9.0;
        let p = Pattern::new_2d(1, &[w; 9]);
        let f = fold(&p, 2);
        let v = [1.0, 2.0, 3.0, 2.0, 1.0];
        for dy in -2isize..=2 {
            for dx in -2isize..=2 {
                let expect = w * w * v[(dy + 2) as usize] * v[(dx + 2) as usize];
                assert_close(f.at(0, dy, dx), expect);
            }
        }
    }

    /// Folding must commute with application: folding then applying once
    /// equals applying the base stencil m times (1D check on random data).
    #[test]
    fn fold_equals_repeated_application_1d() {
        let p = kernels::heat1d();
        let f2 = fold(&p, 2);
        let f3 = fold(&p, 3);
        let n = 64;
        let src: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64).sin()).collect();
        // two manual applications with enough margin
        let mut t1 = src.clone();
        for i in 1..n - 1 {
            t1[i] = p.apply_1d(&src, i);
        }
        let mut t2 = t1.clone();
        for i in 2..n - 2 {
            t2[i] = p.apply_1d(&t1, i);
        }
        let mut t3 = t2.clone();
        for i in 3..n - 3 {
            t3[i] = p.apply_1d(&t2, i);
        }
        for i in 8..n - 8 {
            assert_close(f2.apply_1d(&src, i), t2[i]);
            assert_close(f3.apply_1d(&src, i), t3[i]);
        }
    }

    #[test]
    fn weight_sum_is_preserved_under_folding() {
        // sum(fold(p, m)) = sum(p)^m — mass conservation of averaging
        // stencils survives folding.
        let p = kernels::heat2d();
        let f = fold(&p, 3);
        assert_close(f.weight_sum(), p.weight_sum().powi(3));
    }

    #[test]
    fn fold_radius_grows_linearly() {
        let p = kernels::d1p5(); // radius 2
        assert_eq!(fold(&p, 1).radius(), 2);
        assert_eq!(fold(&p, 2).radius(), 4);
        assert_eq!(fold(&p, 3).radius(), 6);
    }

    #[test]
    fn star_fold_fills_diamond() {
        // folding a star yields a diamond (box-ish support but zero
        // corners at full radius)
        let p = kernels::heat2d();
        let f = fold(&p, 2);
        assert_eq!(f.at(0, 2, 2), 0.0);
        assert!(f.at(0, 1, 1) != 0.0);
        assert!(f.at(0, 2, 0) != 0.0);
    }

    #[test]
    fn convolve_3d_star() {
        let p = kernels::heat3d();
        let f = fold(&p, 2);
        assert_eq!(f.radius(), 2);
        assert_close(f.weight_sum(), p.weight_sum().powi(2));
        assert_eq!(f.at(2, 2, 2), 0.0);
        assert!(f.at(2, 0, 0) != 0.0);
    }
}
