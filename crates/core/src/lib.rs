//! # stencil-core
//!
//! The paper's contribution, as a library: transpose-layout vectorization
//! (§2) and temporal computation folding (§3) for stencil computations,
//! together with every baseline the paper compares against.
//!
//! Module map:
//!
//! * [`pattern`] — stencil weight tensors (1D/2D/3D), star/box algebra.
//! * [`folding`] — folding matrices Λ (m-step self-convolution).
//! * [`plan`] — counterpart planner: vertical/horizontal folding schedule
//!   with proportionality + least-squares reuse (§3.3, §3.5).
//! * [`regression`] — the least-squares machinery behind §3.5.
//! * [`cost`] — op-collect model and profitability index (§3.2).
//! * [`kernels`] — the nine Table-1 benchmarks.
//! * [`exec`] — sweep executors: scalar reference, multiple-loads,
//!   data-reorganization, DLT, transpose-layout, and the register-folded
//!   executor with shifts reuse.
//! * [`tile`] — tessellate tiling (1D/2D/3D), split tiling (the SDSL
//!   stand-in), and plain spatial blocking.
//! * [`api`] — the high-level facade: a [`Solver`] configuration is
//!   validated by [`Solver::compile`] into a reusable [`Plan`]
//!   (pattern x method x tiling x width x thread pool), with invalid
//!   combinations reported as typed [`PlanError`]s.
//! * [`tune`] — tiling-parameter autotuner and the [`Method::Auto`]
//!   resolver (the paper's declared future work).
//! * [`slab`] — halo-correct slab geometry along the outermost axis:
//!   the shared arithmetic behind bit-exact domain sharding
//!   (`stencil-serve`) and out-of-core streaming (`stencil-ooc`).
//!
//! ```
//! use stencil_core::{kernels, Method, Solver};
//! use stencil_grid::Grid1D;
//!
//! // Compile once, run many: the folded method must agree with the
//! // scalar reference away from the Dirichlet boundary band.
//! let g = Grid1D::from_fn(256, |i| ((i * 31 + 7) % 97) as f64 * 0.01);
//! let scalar = Solver::new(kernels::heat1d())
//!     .method(Method::Scalar)
//!     .compile()
//!     .unwrap();
//! let folded = Solver::new(kernels::heat1d())
//!     .method(Method::Folded { m: 2 })
//!     .compile()
//!     .unwrap();
//! let (a, b) = (scalar.run_1d(&g, 4).unwrap(), folded.run_1d(&g, 4).unwrap());
//! for i in 8..248 {
//!     assert!((a.as_slice()[i] - b.as_slice()[i]).abs() < 1e-12);
//! }
//! ```

// Offset-indexed loops are the domain idiom here (windows, tiles, taps);
// iterators would hide the math.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod cost;
pub mod exec;
pub mod folding;
pub mod kernels;
pub mod pattern;
pub mod plan;
pub mod regression;
pub mod slab;
pub mod tile;
pub mod tune;

pub use api::{Domain, Method, Plan, PlanError, Ring3, Solver, Tiling, Tuning, Width};
pub use pattern::{Pattern, Shape};
pub use plan::FoldPlan;
