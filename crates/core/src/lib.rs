//! # stencil-core
//!
//! The paper's contribution, as a library: transpose-layout vectorization
//! (§2) and temporal computation folding (§3) for stencil computations,
//! together with every baseline the paper compares against.
//!
//! Module map:
//!
//! * [`pattern`] — stencil weight tensors (1D/2D/3D), star/box algebra.
//! * [`folding`] — folding matrices Λ (m-step self-convolution).
//! * [`plan`] — counterpart planner: vertical/horizontal folding schedule
//!   with proportionality + least-squares reuse (§3.3, §3.5).
//! * [`regression`] — the least-squares machinery behind §3.5.
//! * [`cost`] — op-collect model and profitability index (§3.2).
//! * [`kernels`] — the nine Table-1 benchmarks.
//! * [`exec`] — sweep executors: scalar reference, multiple-loads,
//!   data-reorganization, DLT, transpose-layout, and the register-folded
//!   executor with shifts reuse.
//! * [`tile`] — tessellate tiling (1D/2D/3D), split tiling (the SDSL
//!   stand-in), and plain spatial blocking.
//! * [`api`] — a high-level `Solver` facade tying pattern x method x
//!   tiling x thread pool together.
//! * [`tune`] — tiling-parameter autotuner (the paper's declared future
//!   work).
//!
//! ```
//! use stencil_core::{kernels, Method, Solver};
//! use stencil_grid::Grid1D;
//!
//! // The folded method must agree with the scalar reference away from
//! // the Dirichlet boundary band.
//! let g = Grid1D::from_fn(256, |i| ((i * 31 + 7) % 97) as f64 * 0.01);
//! let scalar = Solver::new(kernels::heat1d()).method(Method::Scalar).run_1d(&g, 4);
//! let folded = Solver::new(kernels::heat1d()).method(Method::Folded { m: 2 }).run_1d(&g, 4);
//! for i in 8..248 {
//!     assert!((scalar.as_slice()[i] - folded.as_slice()[i]).abs() < 1e-12);
//! }
//! ```

// Offset-indexed loops are the domain idiom here (windows, tiles, taps);
// iterators would hide the math.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod cost;
pub mod exec;
pub mod folding;
pub mod kernels;
pub mod pattern;
pub mod plan;
pub mod regression;
pub mod tile;
pub mod tune;

pub use api::{Method, Solver, Tiling};
pub use pattern::{Pattern, Shape};
pub use plan::FoldPlan;
