//! # stencil-core
//!
//! The paper's contribution, as a library: transpose-layout vectorization
//! (§2) and temporal computation folding (§3) for stencil computations,
//! together with every baseline the paper compares against.
//!
//! Module map:
//!
//! * [`pattern`] — stencil weight tensors (1D/2D/3D), star/box algebra.
//! * [`folding`] — folding matrices Λ (m-step self-convolution).
//! * [`plan`] — counterpart planner: vertical/horizontal folding schedule
//!   with proportionality + least-squares reuse (§3.3, §3.5).
//! * [`regression`] — the least-squares machinery behind §3.5.
//! * [`cost`] — op-collect model and profitability index (§3.2).
//! * [`kernels`] — the nine Table-1 benchmarks.
//! * [`exec`] — sweep executors: scalar reference, multiple-loads,
//!   data-reorganization, DLT, transpose-layout, and the register-folded
//!   executor with shifts reuse.
//! * [`tile`] — tessellate tiling (1D/2D/3D), split tiling (the SDSL
//!   stand-in), and plain spatial blocking.
//! * [`api`] — a high-level `Solver` facade tying pattern x method x
//!   tiling x thread pool together.
//! * [`tune`] — tiling-parameter autotuner (the paper's declared future
//!   work).

#![allow(clippy::needless_range_loop)] // offset-indexed loops are the
// domain idiom here (windows, tiles, taps); iterators would hide the math
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod cost;
pub mod exec;
pub mod folding;
pub mod kernels;
pub mod pattern;
pub mod plan;
pub mod regression;
pub mod tile;
pub mod tune;

pub use api::{Method, Solver, Tiling};
pub use pattern::{Pattern, Shape};
pub use plan::FoldPlan;
