//! Deterministic fault injection for the stencil serving stack.
//!
//! A fixed vocabulary of **failpoints** ([`Failpoint`]) is compiled into
//! the IO, network, queue and worker paths of the workspace. Each site
//! asks [`should_fire`] whether to inject a failure; the answer is
//! driven by one of two trigger kinds, armed per failpoint:
//!
//! - **Probability** ([`arm_probability`]): every hit draws from a
//!   seeded SplitMix64 stream and fires with probability `p`. Same
//!   seed, same hit sequence, same faults — chaos runs are replayable.
//! - **Scripted nth hit** ([`arm_nth`]): fires exactly once, on the
//!   n-th hit of the site. This is how tests place a fault at a precise
//!   point in an execution ("fail the third fsync").
//!
//! The discipline mirrors `stencil-obs`: the crate has no dependencies,
//! is always compiled in, and costs exactly **one relaxed atomic load
//! per site** while globally disabled ([`set_enabled`]), so production
//! binaries carry the failpoints for free. Per-process configuration is
//! available through the `STENCIL_FAULTS` environment variable
//! ([`init_from_env`]), e.g.
//!
//! ```text
//! STENCIL_FAULTS="ooc_read=p0.01@42,net_drop=n3"
//! ```
//!
//! arms `ooc_read` with probability 0.01 (seed 42) and scripts
//! `net_drop` to fire on its third hit.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// The static failpoint vocabulary. Each variant names one injection
/// site family; the wiring lives in the crate that owns the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Failpoint {
    /// A positioned read in the out-of-core slab store.
    OocRead = 0,
    /// A positioned write in the out-of-core slab store.
    OocWrite = 1,
    /// A data sync (fsync) in the out-of-core slab store.
    OocFsync = 2,
    /// A prefetch-thread read in the streaming executor.
    OocPrefetch = 3,
    /// A panic inside a serve worker's job execution.
    WorkerPanic = 4,
    /// The net server reads at most one byte per socket read call.
    NetShortRead = 5,
    /// The net server drops an established connection.
    NetDrop = 6,
    /// A bounded artificial stall at queue dequeue.
    QueueStall = 7,
}

/// Every failpoint, in declaration order (index == discriminant).
pub const ALL: [Failpoint; 8] = [
    Failpoint::OocRead,
    Failpoint::OocWrite,
    Failpoint::OocFsync,
    Failpoint::OocPrefetch,
    Failpoint::WorkerPanic,
    Failpoint::NetShortRead,
    Failpoint::NetDrop,
    Failpoint::QueueStall,
];

impl Failpoint {
    /// Stable wire/config name of this failpoint.
    pub fn name(self) -> &'static str {
        match self {
            Failpoint::OocRead => "ooc_read",
            Failpoint::OocWrite => "ooc_write",
            Failpoint::OocFsync => "ooc_fsync",
            Failpoint::OocPrefetch => "ooc_prefetch",
            Failpoint::WorkerPanic => "worker_panic",
            Failpoint::NetShortRead => "net_short_read",
            Failpoint::NetDrop => "net_drop",
            Failpoint::QueueStall => "queue_stall",
        }
    }

    /// Parse a config name back into a failpoint.
    pub fn from_name(name: &str) -> Option<Self> {
        ALL.into_iter().find(|f| f.name() == name)
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Trigger modes (the `mode` field of a [`Site`]).
const MODE_OFF: u8 = 0;
const MODE_PROB: u8 = 1;
const MODE_NTH: u8 = 2;

/// SplitMix64 additive constant; `fetch_add` of this constant is the
/// generator's state advance, so concurrent hitters each draw a
/// distinct, deterministic value from the same seeded stream.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Finalizer of SplitMix64: maps the raw counter state to output bits.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-failpoint trigger state. All fields are plain atomics so the
/// armed path stays lock-free and the disabled path costs nothing.
struct Site {
    mode: AtomicU8,
    /// Probability mode: fire threshold in u64 space. Nth mode: the
    /// 1-based target hit count.
    param: AtomicU64,
    /// SplitMix64 counter state (probability mode).
    rng: AtomicU64,
    hits: AtomicU64,
    fired: AtomicU64,
}

impl Site {
    const fn new() -> Self {
        Self {
            mode: AtomicU8::new(MODE_OFF),
            param: AtomicU64::new(0),
            rng: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }
}

static SITES: [Site; 8] = [const { Site::new() }; 8];

/// Global gate. While false, [`should_fire`] is one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the fault layer on or off globally. Arming a failpoint does not
/// enable injection by itself; the gate keeps the disabled cost at one
/// relaxed atomic load per site regardless of what is armed.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the global gate is open.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Should this site inject a failure now? The armed decision is
/// deterministic for a given seed and hit sequence. Disabled cost: one
/// relaxed atomic load.
#[inline]
pub fn should_fire(fp: Failpoint) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    fire_slow(fp)
}

#[cold]
fn fire_slow(fp: Failpoint) -> bool {
    let site = &SITES[fp.index()];
    let mode = site.mode.load(Ordering::Relaxed);
    if mode == MODE_OFF {
        return false;
    }
    let hit = site.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let fire = match mode {
        MODE_PROB => {
            let state = site
                .rng
                .fetch_add(GOLDEN, Ordering::Relaxed)
                .wrapping_add(GOLDEN);
            mix(state) < site.param.load(Ordering::Relaxed)
        }
        MODE_NTH => hit == site.param.load(Ordering::Relaxed),
        _ => false,
    };
    if fire {
        site.fired.fetch_add(1, Ordering::Relaxed);
    }
    fire
}

/// Arm `fp` to fire with probability `p` (clamped to `[0, 1]`) on every
/// hit, drawing from a SplitMix64 stream seeded with `seed`. Resets the
/// site's hit and fired counters.
pub fn arm_probability(fp: Failpoint, p: f64, seed: u64) {
    let site = &SITES[fp.index()];
    let p = p.clamp(0.0, 1.0);
    // Threshold in u64 space; p == 1.0 saturates to always-fire.
    let threshold = if p >= 1.0 {
        u64::MAX
    } else {
        (p * (u64::MAX as f64)) as u64
    };
    site.param.store(threshold, Ordering::Relaxed);
    site.rng.store(seed, Ordering::Relaxed);
    site.hits.store(0, Ordering::Relaxed);
    site.fired.store(0, Ordering::Relaxed);
    site.mode.store(MODE_PROB, Ordering::Relaxed);
}

/// Arm `fp` to fire exactly once, on its `n`-th hit (1-based; `n == 0`
/// is treated as 1). Resets the site's hit and fired counters.
pub fn arm_nth(fp: Failpoint, n: u64) {
    let site = &SITES[fp.index()];
    site.param.store(n.max(1), Ordering::Relaxed);
    site.hits.store(0, Ordering::Relaxed);
    site.fired.store(0, Ordering::Relaxed);
    site.mode.store(MODE_NTH, Ordering::Relaxed);
}

/// Disarm `fp` (it keeps its counters until re-armed).
pub fn disarm(fp: Failpoint) {
    SITES[fp.index()].mode.store(MODE_OFF, Ordering::Relaxed);
}

/// Disarm every failpoint and zero all counters. Leaves the global
/// gate as-is; pair with [`set_enabled`] in test teardown.
pub fn disarm_all() {
    for site in &SITES {
        site.mode.store(MODE_OFF, Ordering::Relaxed);
        site.param.store(0, Ordering::Relaxed);
        site.rng.store(0, Ordering::Relaxed);
        site.hits.store(0, Ordering::Relaxed);
        site.fired.store(0, Ordering::Relaxed);
    }
}

/// How many times `fp`'s site has been evaluated while armed.
pub fn hits(fp: Failpoint) -> u64 {
    SITES[fp.index()].hits.load(Ordering::Relaxed)
}

/// How many times `fp` actually fired.
pub fn fired(fp: Failpoint) -> u64 {
    SITES[fp.index()].fired.load(Ordering::Relaxed)
}

/// The canonical injected IO failure for failpoint `fp`: a
/// transient-classified `ErrorKind::Interrupted` error, so the injection
/// exercises the same retry/backoff path a real transient fault would.
pub fn injected_io_error(fp: Failpoint) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected failpoint: {}", fp.name()),
    )
}

/// Arm failpoints from the `STENCIL_FAULTS` environment variable and
/// open the global gate if anything was armed. Returns how many
/// failpoints were armed. Syntax (comma-separated, whitespace ignored):
///
/// - `name=p<prob>` or `name=p<prob>@<seed>` — probability trigger
///   (default seed 0);
/// - `name=n<hit>` — scripted nth-hit trigger.
///
/// Unknown names and malformed specs are skipped, never fatal: a typo'd
/// fault config must not take down a production process.
pub fn init_from_env() -> usize {
    match std::env::var("STENCIL_FAULTS") {
        Ok(spec) => init_from_spec(&spec),
        Err(_) => 0,
    }
}

/// [`init_from_env`] on an explicit spec string (testable core).
pub fn init_from_spec(spec: &str) -> usize {
    let mut armed = 0;
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let Some((name, trig)) = item.split_once('=') else {
            continue;
        };
        let Some(fp) = Failpoint::from_name(name.trim()) else {
            continue;
        };
        let trig = trig.trim();
        if let Some(rest) = trig.strip_prefix('p') {
            let (p, seed) = match rest.split_once('@') {
                Some((p, s)) => (p.parse::<f64>(), s.parse::<u64>().unwrap_or(0)),
                None => (rest.parse::<f64>(), 0),
            };
            if let Ok(p) = p {
                arm_probability(fp, p, seed);
                armed += 1;
            }
        } else if let Some(rest) = trig.strip_prefix('n') {
            if let Ok(n) = rest.parse::<u64>() {
                arm_nth(fp, n);
                armed += 1;
            }
        }
    }
    if armed > 0 {
        set_enabled(true);
    }
    armed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Failpoint state is process-global; tests that touch it must not
    /// interleave.
    static GLOBALS: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            disarm_all();
            set_enabled(false);
        }
    }

    #[test]
    fn names_round_trip() {
        for fp in ALL {
            assert_eq!(Failpoint::from_name(fp.name()), Some(fp));
        }
        assert_eq!(Failpoint::from_name("bogus"), None);
    }

    #[test]
    fn disabled_gate_never_fires_even_when_armed() {
        let _g = serial();
        let _r = Reset;
        disarm_all();
        set_enabled(false);
        arm_probability(Failpoint::OocRead, 1.0, 7);
        for _ in 0..100 {
            assert!(!should_fire(Failpoint::OocRead));
        }
        // the gated-off path must not even count hits
        assert_eq!(hits(Failpoint::OocRead), 0);
    }

    #[test]
    fn nth_hit_fires_exactly_once_at_the_scripted_hit() {
        let _g = serial();
        let _r = Reset;
        disarm_all();
        set_enabled(true);
        arm_nth(Failpoint::OocFsync, 3);
        let pattern: Vec<bool> = (0..6).map(|_| should_fire(Failpoint::OocFsync)).collect();
        assert_eq!(pattern, [false, false, true, false, false, false]);
        assert_eq!(hits(Failpoint::OocFsync), 6);
        assert_eq!(fired(Failpoint::OocFsync), 1);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let _g = serial();
        let _r = Reset;
        disarm_all();
        set_enabled(true);
        let draw = |seed: u64| -> Vec<bool> {
            arm_probability(Failpoint::NetDrop, 0.25, seed);
            (0..64).map(|_| should_fire(Failpoint::NetDrop)).collect()
        };
        let a = draw(42);
        let b = draw(42);
        let c = draw(43);
        assert_eq!(a, b, "same seed must replay the same fault schedule");
        assert_ne!(a, c, "a different seed must give a different schedule");
        assert!(a.iter().any(|&f| f), "p=0.25 over 64 hits should fire");
        assert!(!a.iter().all(|&f| f), "p=0.25 must not always fire");
    }

    #[test]
    fn probability_extremes_behave() {
        let _g = serial();
        let _r = Reset;
        disarm_all();
        set_enabled(true);
        arm_probability(Failpoint::OocWrite, 1.0, 1);
        assert!((0..32).all(|_| should_fire(Failpoint::OocWrite)));
        arm_probability(Failpoint::OocWrite, 0.0, 1);
        assert!((0..32).all(|_| !should_fire(Failpoint::OocWrite)));
    }

    #[test]
    fn unarmed_sites_are_independent() {
        let _g = serial();
        let _r = Reset;
        disarm_all();
        set_enabled(true);
        arm_probability(Failpoint::OocRead, 1.0, 9);
        assert!(should_fire(Failpoint::OocRead));
        assert!(!should_fire(Failpoint::OocWrite));
        assert!(!should_fire(Failpoint::QueueStall));
    }

    #[test]
    fn spec_parser_arms_and_skips_garbage() {
        let _g = serial();
        let _r = Reset;
        disarm_all();
        set_enabled(false);
        let n = init_from_spec("ooc_read = p0.5@42 , net_drop=n3, bogus=p1, ooc_write=x9, ,");
        assert_eq!(n, 2);
        assert!(enabled(), "arming via spec opens the gate");
        // net_drop fires exactly on hit 3
        assert!(!should_fire(Failpoint::NetDrop));
        assert!(!should_fire(Failpoint::NetDrop));
        assert!(should_fire(Failpoint::NetDrop));
        // the malformed ooc_write spec stayed off
        assert!(!should_fire(Failpoint::OocWrite));
    }

    #[test]
    fn empty_spec_leaves_the_gate_closed() {
        let _g = serial();
        let _r = Reset;
        disarm_all();
        set_enabled(false);
        assert_eq!(init_from_spec(""), 0);
        assert!(!enabled());
    }

    #[test]
    fn injected_error_is_transient_classified() {
        let e = injected_io_error(Failpoint::OocRead);
        assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        assert!(e.to_string().contains("ooc_read"));
    }
}
