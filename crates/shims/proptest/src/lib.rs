//! Vendored minimal re-implementation of the `proptest` API subset used by
//! this workspace's property tests.
//!
//! The build environment has no network access to crates.io, so instead of
//! depending on the real `proptest` crate the workspace vendors this shim:
//! a [`Strategy`] trait over a deterministic xorshift RNG, the handful of
//! strategy constructors the tests call (numeric ranges,
//! `prop::array::uniform4/8`, `prop::collection::vec`), and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs via `Debug`
//!   formatting in the panic message but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs.
//! * **`prop_assert*` are early returns**, not panics: the generated test
//!   body is a closure returning `Result<(), String>`, matching real
//!   proptest closely enough that `return Ok(())` in a test body works.

#![deny(missing_docs)]

/// Deterministic split-mix/xorshift RNG driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a seed (0 is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits, like rand's standard uniform.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values. The shim equivalent of proptest's
/// `Strategy`: no value tree, no shrinking — just sampling.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Fixed-length array strategies (`prop::array::uniform4` & co).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]`, each element drawn independently.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// Array of 4 values drawn from `strategy`.
    pub fn uniform4<S: Strategy>(strategy: S) -> UniformArray<S, 4> {
        UniformArray(strategy)
    }

    /// Array of 8 values drawn from `strategy`.
    pub fn uniform8<S: Strategy>(strategy: S) -> UniformArray<S, 8> {
        UniformArray(strategy)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::RangeInclusive<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let (lo, hi) = (*self.len.start(), *self.len.end());
            let len = if lo == hi {
                lo
            } else {
                lo + (rng.next_u64() as usize) % (hi - lo + 1)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Length specification: a fixed size or an inclusive range of sizes.
    pub trait IntoSizeRange {
        /// Convert into an inclusive length range.
        fn into_size_range(self) -> core::ops::RangeInclusive<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> core::ops::RangeInclusive<usize> {
            self..=self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> core::ops::RangeInclusive<usize> {
            assert!(self.start < self.end, "empty vec-length range");
            self.start..=self.end - 1
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> core::ops::RangeInclusive<usize> {
            self
        }
    }

    /// `Vec` strategy with `len` elements (or a length drawn from a range).
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a hash of a test name, used as the deterministic RNG seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF29CE484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case returns an error that panics with the case's inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` that samples its arguments `cases` times from a
/// deterministic RNG and runs the body as a `Result<(), String>` closure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let result: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        msg,
                        inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// strategy constructors.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(seed_a());
        let mut b = TestRng::new(seed_a());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    fn seed_a() -> u64 {
        crate::seed_from_name("rng_is_deterministic")
    }

    #[test]
    fn f64_samples_stay_in_range() {
        let mut rng = TestRng::new(42);
        for _ in 0..10_000 {
            let x = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_samples_stay_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..10_000 {
            let x = Strategy::sample(&(5usize..9), &mut rng);
            assert!((5..9).contains(&x));
            let y = Strategy::sample(&(1usize..=3), &mut rng);
            assert!((1..=3).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_running_tests(a in prop::array::uniform4(-1.0f64..1.0), n in 1usize..4) {
            prop_assert_eq!(a.len(), 4);
            prop_assert!(n >= 1, "n={}", n);
            let v = Strategy::sample(&prop::collection::vec(0.0f64..1.0, 3), &mut TestRng::new(1));
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn early_ok_return_works(x in 0u64..10) {
            if x < 100 {
                return Ok(());
            }
            prop_assert!(false);
        }
    }
}
