//! Vendored minimal re-implementation of the `criterion` API subset used
//! by this workspace's benches (`harness = false` targets).
//!
//! The build environment has no network access to crates.io, so the
//! benches link against this shim instead of the real crate. It keeps the
//! same shape — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`Throughput`], [`BatchSize`], [`criterion_group!`],
//! [`criterion_main!`] — but the statistics are deliberately simple: each
//! benchmark runs a warm-up phase, then collects `sample_size` samples
//! inside the configured measurement time and reports min / mean / max
//! nanoseconds per iteration plus derived throughput. No HTML reports, no
//! outlier analysis, no comparison against saved baselines.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched-setup inputs are sized. The shim only uses this to pick how
/// many iterations share one setup call.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many iterations per setup.
    SmallInput,
    /// Large inputs: one iteration per setup.
    LargeInput,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Nanoseconds per iteration for each collected sample.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Self {
        Self {
            samples: Vec::new(),
            sample_size,
            measurement_time,
            warm_up_time,
        }
    }

    /// Benchmark `routine`, timing batches of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Size each sample so that `sample_size` samples fit in the
        // measurement budget, with at least one iteration per sample.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / self.sample_size as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            // Do not overshoot a slow benchmark's budget by more than 2x.
            if measure_start.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
    }

    /// Benchmark `routine` against a fresh setup value each batch, passed
    /// by mutable reference (the `iter_batched_ref` pattern).
    pub fn iter_batched_ref<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(&mut S) -> O,
    {
        // One setup per timed iteration: correct for involution-style
        // routines (like in-place layout transforms) at the cost of more
        // setup calls than real criterion's SmallInput batching.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let mut input = setup();
            std::hint::black_box(routine(&mut input));
            warm_iters += 1;
        }
        let _ = warm_iters;

        for _ in 0..self.sample_size {
            let mut input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, group: &str, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{name:40} (no samples)");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0, f64::max);
        let rate = match throughput {
            Some(Throughput::Elements(e)) => {
                format!("  {:10.1} Melem/s", e as f64 / mean * 1e3)
            }
            Some(Throughput::Bytes(b)) => {
                format!("  {:10.1} MiB/s", b as f64 / mean * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!(
            "{group}/{name:40} [min {min:12.1} ns  mean {mean:12.1} ns  max {max:12.1} ns]{rate}"
        );
    }
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up budget for subsequent benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement budget for subsequent benchmarks.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set how many samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the per-iteration throughput used for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b);
        b.report(&self.name, &id, self.throughput);
        self
    }

    /// End the group (prints a trailing blank line, mirroring criterion).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver. The shim holds no global configuration;
/// it exists so `criterion_group!` functions keep their real signature
/// `fn(&mut Criterion)`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group with default timing configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(20, Duration::from_secs(1), Duration::from_millis(300));
        f(&mut b);
        b.report("bench", &id, None);
        self
    }
}

/// Bundle benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5, Duration::from_millis(20), Duration::from_millis(5));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn batched_ref_runs_setup_per_sample() {
        let mut b = Bencher::new(4, Duration::from_millis(10), Duration::from_millis(2));
        b.iter_batched_ref(
            || vec![1.0f64; 16],
            |v| v.iter_mut().for_each(|x| *x *= -1.0),
            BatchSize::LargeInput,
        );
        assert_eq!(b.samples.len(), 4);
    }

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_macro_produces_runner() {
        let mut c = Criterion::default();
        benches(&mut c);
    }
}
