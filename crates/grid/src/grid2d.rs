//! Dense 2D grid with padded row stride.

use crate::aligned::AlignedBuf;

/// Row stride padding unit, in `f64` elements (one cache line).
pub const STRIDE_PAD: usize = 8;

/// A dense row-major 2D grid (`ny` rows of `nx` points) whose row stride
/// is padded up to a multiple of [`STRIDE_PAD`] so every row starts
/// 64-byte aligned.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid2D {
    buf: AlignedBuf,
    ny: usize,
    nx: usize,
    stride: usize,
}

/// Round `n` up to a multiple of `unit`.
#[inline]
pub fn round_up(n: usize, unit: usize) -> usize {
    n.div_ceil(unit) * unit
}

impl Grid2D {
    /// Zero-initialized `ny x nx` grid.
    pub fn zeros(ny: usize, nx: usize) -> Self {
        let stride = round_up(nx.max(1), STRIDE_PAD);
        Self {
            buf: AlignedBuf::zeroed(ny * stride),
            ny,
            nx,
            stride,
        }
    }

    /// Grid initialized from a function of `(y, x)`.
    pub fn from_fn(ny: usize, nx: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Self::zeros(ny, nx);
        for y in 0..ny {
            for x in 0..nx {
                g[(y, x)] = f(y, x);
            }
        }
        g
    }

    /// Rows.
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Columns (logical row length).
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Physical row stride in elements (`>= nx`, multiple of 8).
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Shared view of row `y` (logical length `nx`).
    #[inline(always)]
    pub fn row(&self, y: usize) -> &[f64] {
        debug_assert!(y < self.ny);
        &self.buf[y * self.stride..y * self.stride + self.nx]
    }

    /// Mutable view of row `y`.
    #[inline(always)]
    pub fn row_mut(&mut self, y: usize) -> &mut [f64] {
        debug_assert!(y < self.ny);
        &mut self.buf[y * self.stride..y * self.stride + self.nx]
    }

    /// Whole padded backing buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        self.buf.as_slice()
    }

    /// Whole padded backing buffer, mutable.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.buf.as_mut_slice()
    }

    /// Raw pointer to `(0,0)`.
    #[inline(always)]
    pub fn as_ptr(&self) -> *const f64 {
        self.buf.as_ptr()
    }

    /// Raw mutable pointer to `(0,0)`.
    #[inline(always)]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.buf.as_mut_ptr()
    }

    /// Copy the logical contents (without padding) into a flat `Vec`
    /// of length `ny * nx` — used by tests to compare grids with
    /// different strides.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ny * self.nx);
        for y in 0..self.ny {
            out.extend_from_slice(self.row(y));
        }
        out
    }

    /// Fill every logical cell with a constant (padding untouched).
    pub fn fill(&mut self, v: f64) {
        for y in 0..self.ny {
            self.row_mut(y).fill(v);
        }
    }
}

impl core::ops::Index<(usize, usize)> for Grid2D {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (y, x): (usize, usize)) -> &f64 {
        debug_assert!(y < self.ny && x < self.nx);
        &self.buf[y * self.stride + x]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Grid2D {
    #[inline(always)]
    fn index_mut(&mut self, (y, x): (usize, usize)) -> &mut f64 {
        debug_assert!(y < self.ny && x < self.nx);
        &mut self.buf[y * self.stride + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_is_padded_and_rows_aligned() {
        let g = Grid2D::zeros(3, 13);
        assert_eq!(g.stride(), 16);
        assert_eq!(g.row(2).len(), 13);
        assert_eq!(g.row(1).as_ptr() as usize % 64, 0);
    }

    #[test]
    fn from_fn_and_index() {
        let g = Grid2D::from_fn(4, 5, |y, x| (y * 10 + x) as f64);
        assert_eq!(g[(3, 4)], 34.0);
        assert_eq!(g.row(2)[1], 21.0);
    }

    #[test]
    fn to_dense_strips_padding() {
        let g = Grid2D::from_fn(2, 3, |y, x| (y * 3 + x) as f64);
        assert_eq!(g.to_dense(), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn exact_multiple_stride() {
        let g = Grid2D::zeros(2, 16);
        assert_eq!(g.stride(), 16);
    }
}
