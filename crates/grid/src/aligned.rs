//! 64-byte-aligned heap buffer of `f64`.
//!
//! Vector sets in the transpose layout must sit on vector-width
//! boundaries (the paper aligns each set to 32 bytes; we align every
//! buffer to 64 so both AVX2 and AVX-512 sets are aligned and no buffer
//! straddles a cache line unnecessarily).

use std::alloc::{alloc, alloc_zeroed, dealloc, handle_alloc_error, Layout};

/// Cache-line alignment used for all grid storage.
pub const ALIGN: usize = 64;

/// Below this many bytes [`AlignedBuf::zeroed_parallel`] falls back to
/// the serial [`AlignedBuf::zeroed`]: thread spawn costs more than the
/// page touches save.
pub const FIRST_TOUCH_MIN_BYTES: usize = 1 << 22;

/// A heap-allocated, 64-byte aligned, fixed-length `f64` buffer.
pub struct AlignedBuf {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively; &AlignedBuf only
// hands out shared slices, &mut hands out exclusive slices.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate a zero-initialized buffer of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: core::ptr::NonNull::<f64>::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size here.
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        Self {
            ptr: raw.cast::<f64>(),
            len,
        }
    }

    /// Allocate a zero-initialized buffer of `len` doubles, touching
    /// the pages from `workers` threads in disjoint cache-line-aligned
    /// chunks.
    ///
    /// `alloc_zeroed` hands back untouched copy-on-write pages; the
    /// first write faults each page in on the writing thread's NUMA
    /// node. A single-threaded zeroing loop therefore serializes the
    /// allocation *and* homes every page on one node — this variant
    /// writes the zeros from the threads that will sweep the data, so
    /// first-touch placement lands where the work is (the first piece
    /// of the ROADMAP NUMA item). Falls back to [`Self::zeroed`] below
    /// [`FIRST_TOUCH_MIN_BYTES`] or for a single worker. The contents
    /// are identical to `zeroed` either way.
    pub fn zeroed_parallel(len: usize, workers: usize) -> Self {
        let workers = workers.max(1).min(len / (ALIGN / 8) + 1);
        if workers == 1 || len * core::mem::size_of::<f64>() < FIRST_TOUCH_MIN_BYTES {
            return Self::zeroed(len);
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size here (len >= minimum bytes).
        let raw = unsafe { alloc(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        let ptr = raw.cast::<f64>();
        // chunk starts stay 64-byte aligned so no two workers share a
        // cache line (or a page, for page-aligned allocations)
        let per = len.div_ceil(workers).next_multiple_of(ALIGN / 8);
        struct SendPtr(*mut f64);
        // SAFETY: each worker writes a disjoint chunk of the allocation.
        unsafe impl Send for SendPtr {}
        std::thread::scope(|scope| {
            for w in 1..workers {
                let lo = (per * w).min(len);
                let hi = (per * (w + 1)).min(len);
                if lo >= hi {
                    break;
                }
                // SAFETY: [lo, hi) chunks are disjoint and in-bounds.
                let chunk = SendPtr(unsafe { ptr.add(lo) });
                scope.spawn(move || {
                    let chunk = chunk;
                    // SAFETY: valid for hi - lo writes; f64 zero is the
                    // all-zero-bytes pattern.
                    unsafe { core::ptr::write_bytes(chunk.0, 0, hi - lo) };
                });
            }
            // SAFETY: chunk 0 is this thread's own disjoint range.
            unsafe { core::ptr::write_bytes(ptr, 0, per.min(len)) };
        });
        Self { ptr, len }
    }

    /// Allocate and initialize from a function of the index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        let mut buf = Self::zeroed(len);
        for (i, slot) in buf.as_mut_slice().iter_mut().enumerate() {
            *slot = f(i);
        }
        buf
    }

    /// Allocate and copy from a slice.
    pub fn from_slice(src: &[f64]) -> Self {
        Self::from_fn(src.len(), |i| src[i])
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * core::mem::size_of::<f64>(), ALIGN)
            .expect("buffer too large for layout")
    }

    /// Number of doubles.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared slice of the whole buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: ptr valid for len elements by construction.
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Exclusive slice of the whole buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: ptr valid for len elements; &mut self gives exclusivity.
        unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Raw const pointer to element 0.
    #[inline(always)]
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr
    }

    /// Raw mut pointer to element 0.
    #[inline(always)]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.ptr
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: f64) {
        self.as_mut_slice().fill(v);
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated with the same layout in `zeroed`.
            unsafe { dealloc(self.ptr.cast(), Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl core::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

impl core::ops::Deref for AlignedBuf {
    type Target = [f64];
    #[inline(always)]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl core::ops::DerefMut for AlignedBuf {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let b = AlignedBuf::zeroed(1000);
        assert_eq!(b.len(), 1000);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(b.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn from_fn_and_clone() {
        let b = AlignedBuf::from_fn(17, |i| i as f64 * 2.0);
        assert_eq!(b[16], 32.0);
        let c = b.clone();
        assert_eq!(b, c);
        assert_ne!(b.as_ptr(), c.as_ptr());
    }

    #[test]
    fn empty_buffer() {
        let b = AlignedBuf::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[f64]);
        let _ = b.clone();
    }

    #[test]
    fn mutation_through_deref() {
        let mut b = AlignedBuf::zeroed(8);
        b[3] = 7.0;
        b.fill(1.5);
        assert!(b.iter().all(|&x| x == 1.5));
    }

    #[test]
    fn zeroed_parallel_matches_zeroed() {
        // above the fallback threshold: really touched in parallel
        let len = FIRST_TOUCH_MIN_BYTES / 8 + 1;
        for workers in [1, 2, 3, 8] {
            let b = AlignedBuf::zeroed_parallel(len, workers);
            assert_eq!(b.len(), len);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "workers={workers}");
            assert!(b.iter().all(|&x| x == 0.0), "workers={workers}");
        }
        // below it: serial fallback, same contents
        let b = AlignedBuf::zeroed_parallel(100, 4);
        assert!(b.iter().all(|&x| x == 0.0));
        assert!(AlignedBuf::zeroed_parallel(0, 4).is_empty());
    }

    #[test]
    fn many_allocations_stay_aligned() {
        for len in 1..100 {
            let b = AlignedBuf::zeroed(len);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "len={len}");
        }
    }
}
