//! Memory layout transforms: local transpose layout vs global DLT.

use stencil_simd::transpose::{transpose_blocks_in_place, transpose_layout_index, transpose_rect};
use stencil_simd::SimdF64;

/// The paper's **local transpose layout** (§2.2).
///
/// A buffer of length `n` is split into `n / (vl*vl)` full blocks plus a
/// scalar tail. Each full block is viewed as a `vl x vl` row-major matrix
/// and transposed in place; the tail is left untouched (executors process
/// it with scalar code). The transform is its own inverse.
#[derive(Debug, Clone, Copy)]
pub struct TransposeLayout {
    vl: usize,
}

impl TransposeLayout {
    /// Layout for vector length `vl` (4 for AVX2, 8 for AVX-512).
    pub fn new(vl: usize) -> Self {
        assert!(vl.is_power_of_two() && (1..=8).contains(&vl));
        Self { vl }
    }

    /// Vector length.
    #[inline(always)]
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Elements per transposed block.
    #[inline(always)]
    pub fn block(&self) -> usize {
        self.vl * self.vl
    }

    /// Length of the prefix covered by full blocks.
    #[inline(always)]
    pub fn covered(&self, n: usize) -> usize {
        n - n % self.block()
    }

    /// Apply (or undo — it is an involution) the layout in place.
    pub fn apply<V: SimdF64>(&self, buf: &mut [f64]) {
        assert_eq!(V::LANES, self.vl, "vector width mismatch");
        let covered = self.covered(buf.len());
        transpose_blocks_in_place::<V>(&mut buf[..covered]);
    }

    /// Where original element `i` lives in the transposed buffer
    /// (identity in the scalar tail).
    #[inline]
    pub fn index(&self, i: usize, n: usize) -> usize {
        if i < self.covered(n) {
            transpose_layout_index(i, self.vl)
        } else {
            i
        }
    }
}

/// **DLT layout** (dimension-lifted transpose, Henretty et al.).
///
/// The whole array of length `n` (require `n % vl == 0` for the lifted
/// view; executors pad) is viewed as a `vl x (n/vl)` row-major matrix and
/// globally transposed into a *separate* buffer of shape
/// `(n/vl) x vl` — i.e. `dlt[p*vl + l] = orig[l*(n/vl) + p]`. Lane `l` of
/// vector `p` holds original element `l*cols + p`: the `x +- 1` neighbours
/// are the *adjacent vectors* `p +- 1`, so the steady-state sweep needs no
/// shuffles at all — but elements of one vector are `n/vl` apart in the
/// original space, which destroys spatial locality for tiling, and the
/// global transpose costs two full passes over the array.
#[derive(Debug, Clone, Copy)]
pub struct DltLayout {
    vl: usize,
    n: usize,
}

impl DltLayout {
    /// Layout for array length `n` and vector length `vl`.
    /// Panics unless `n` is a positive multiple of `vl`.
    pub fn new(n: usize, vl: usize) -> Self {
        assert!(
            vl >= 1 && n > 0 && n.is_multiple_of(vl),
            "n must be a multiple of vl"
        );
        Self { vl, n }
    }

    /// Lifted row length (`n / vl`): number of vectors in DLT space.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.n / self.vl
    }

    /// Vector length.
    #[inline(always)]
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Forward transform `orig -> dlt` (out of place, the extra array the
    /// paper notes DLT needs).
    pub fn to_dlt<V: SimdF64>(&self, orig: &[f64], dlt: &mut [f64]) {
        assert_eq!(orig.len(), self.n);
        assert_eq!(dlt.len(), self.n);
        // orig is vl rows x cols; dlt is its transpose (cols rows x vl).
        transpose_rect::<V>(orig, dlt, self.vl, self.cols());
    }

    /// Inverse transform `dlt -> orig`.
    pub fn from_dlt<V: SimdF64>(&self, dlt: &[f64], orig: &mut [f64]) {
        assert_eq!(orig.len(), self.n);
        assert_eq!(dlt.len(), self.n);
        transpose_rect::<V>(dlt, orig, self.cols(), self.vl);
    }

    /// Position of original element `i` in the DLT buffer.
    #[inline]
    pub fn index(&self, i: usize) -> usize {
        let cols = self.cols();
        let (lane, p) = (i / cols, i % cols);
        p * self.vl + lane
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_simd::portable::PF64x4;

    #[test]
    fn transpose_layout_roundtrip_with_tail() {
        let n = 16 * 3 + 7; // three blocks + scalar tail
        let orig: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let lay = TransposeLayout::new(4);
        let mut buf = orig.clone();
        lay.apply::<PF64x4>(&mut buf);
        // index map agrees
        for i in 0..n {
            assert_eq!(buf[lay.index(i, n)], orig[i], "i={i}");
        }
        // tail untouched
        assert_eq!(&buf[48..], &orig[48..]);
        lay.apply::<PF64x4>(&mut buf);
        assert_eq!(buf, orig);
    }

    #[test]
    fn dlt_roundtrip_and_index() {
        let n = 40;
        let lay = DltLayout::new(n, 4);
        let orig: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut dlt = vec![0.0; n];
        lay.to_dlt::<PF64x4>(&orig, &mut dlt);
        for i in 0..n {
            assert_eq!(dlt[lay.index(i)], orig[i], "i={i}");
        }
        let mut back = vec![0.0; n];
        lay.from_dlt::<PF64x4>(&dlt, &mut back);
        assert_eq!(back, orig);
    }

    #[test]
    fn dlt_neighbors_are_adjacent_vectors() {
        // The property DLT exists for: orig[x+1] sits exactly vl elements
        // after orig[x] in DLT space (same lane, next vector), except at
        // lifted-row boundaries.
        let n = 32;
        let lay = DltLayout::new(n, 4);
        let cols = lay.cols();
        for x in 0..n - 1 {
            if (x + 1) % cols != 0 {
                assert_eq!(lay.index(x + 1), lay.index(x) + 4, "x={x}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn dlt_requires_multiple_of_vl() {
        DltLayout::new(10, 4);
    }
}
