//! Jacobi ping-pong buffer pair.
//!
//! Jacobi-style stencils keep two arrays, one for odd and one for even
//! time levels (paper §3.3, "Conventionally the stencil of Jacobi style is
//! implemented with two arrays"). `PingPong` owns both and tracks which
//! one holds the latest time level. Tiled executors rely on the *two
//! latest* levels being available simultaneously — the tessellation
//! correctness argument uses exactly that property.

/// A pair of equally-shaped buffers with a parity pointer.
#[derive(Clone, Debug)]
pub struct PingPong<G> {
    bufs: [G; 2],
    /// Index of the buffer holding the most recent time level.
    cur: usize,
    /// Number of completed swaps (== time steps advanced for whole-grid
    /// sweeps).
    steps: usize,
}

impl<G> PingPong<G> {
    /// Create from an initial state; the second buffer starts as a clone.
    pub fn new(initial: G) -> Self
    where
        G: Clone,
    {
        let other = initial.clone();
        Self {
            bufs: [initial, other],
            cur: 0,
            steps: 0,
        }
    }

    /// Create from two explicit buffers (must be equally shaped; the
    /// caller guarantees it).
    pub fn from_pair(current: G, scratch: G) -> Self {
        Self {
            bufs: [current, scratch],
            cur: 0,
            steps: 0,
        }
    }

    /// The buffer holding the latest time level.
    #[inline(always)]
    pub fn current(&self) -> &G {
        &self.bufs[self.cur]
    }

    /// The buffer holding the previous time level.
    #[inline(always)]
    pub fn previous(&self) -> &G {
        &self.bufs[1 - self.cur]
    }

    /// Borrow `(src, dst)` = (latest level, buffer to write the next
    /// level into).
    #[inline(always)]
    pub fn src_dst(&mut self) -> (&G, &mut G) {
        let (a, b) = self.bufs.split_at_mut(1);
        if self.cur == 0 {
            (&a[0], &mut b[0])
        } else {
            (&b[0], &mut a[0])
        }
    }

    /// Mutable access to both buffers as `(current, previous)`.
    #[inline(always)]
    pub fn both_mut(&mut self) -> (&mut G, &mut G) {
        let (a, b) = self.bufs.split_at_mut(1);
        if self.cur == 0 {
            (&mut a[0], &mut b[0])
        } else {
            (&mut b[0], &mut a[0])
        }
    }

    /// Flip parity after writing a full step into the scratch buffer.
    #[inline(always)]
    pub fn swap(&mut self) {
        self.cur = 1 - self.cur;
        self.steps += 1;
    }

    /// Advance parity by `m` steps at once (used by folded executors that
    /// write the `t+m` level directly into the scratch buffer: the buffer
    /// flip is still a single swap, but the logical step count moves by
    /// `m`).
    #[inline(always)]
    pub fn swap_folded(&mut self, m: usize) {
        self.cur = 1 - self.cur;
        self.steps += m;
    }

    /// Completed logical time steps.
    #[inline(always)]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Consume and return the buffer holding the latest level.
    pub fn into_current(self) -> G {
        let [a, b] = self.bufs;
        if self.cur == 0 {
            a
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Grid1D;

    #[test]
    fn swap_tracks_parity_and_steps() {
        let g = Grid1D::from_fn(4, |i| i as f64);
        let mut pp = PingPong::new(g);
        assert_eq!(pp.steps(), 0);
        {
            let (src, dst) = pp.src_dst();
            for i in 0..4 {
                dst[i] = src[i] + 1.0;
            }
        }
        pp.swap();
        assert_eq!(pp.steps(), 1);
        assert_eq!(pp.current()[2], 3.0);
        assert_eq!(pp.previous()[2], 2.0);
    }

    #[test]
    fn folded_swap_counts_m_steps() {
        let mut pp = PingPong::new(Grid1D::zeros(2));
        pp.swap_folded(2);
        pp.swap_folded(2);
        assert_eq!(pp.steps(), 4);
    }

    #[test]
    fn into_current_returns_latest() {
        let mut pp = PingPong::new(Grid1D::zeros(3));
        {
            let (_, dst) = pp.src_dst();
            dst[0] = 9.0;
        }
        pp.swap();
        let g = pp.into_current();
        assert_eq!(g[0], 9.0);
    }
}
