//! Dense 3D grid with padded x-stride.

use crate::aligned::AlignedBuf;
use crate::grid2d::{round_up, STRIDE_PAD};

/// A dense 3D grid (`nz` planes of `ny` rows of `nx` points), stored
/// z-major / row-major with the x-stride padded to a multiple of 8 so
/// every row starts 64-byte aligned. The paper manipulates 3D volumes as
/// `nz`-layer stacks of 2D slices (§3.3); this container makes each slice
/// directly addressable as a `Grid2D`-compatible region.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3D {
    buf: AlignedBuf,
    nz: usize,
    ny: usize,
    nx: usize,
    stride_y: usize,
    stride_z: usize,
}

impl Grid3D {
    /// Zero-initialized `nz x ny x nx` grid.
    pub fn zeros(nz: usize, ny: usize, nx: usize) -> Self {
        let stride_y = round_up(nx.max(1), STRIDE_PAD);
        let stride_z = stride_y * ny;
        Self {
            buf: AlignedBuf::zeroed(nz * stride_z),
            nz,
            ny,
            nx,
            stride_y,
            stride_z,
        }
    }

    /// Zero-initialized `nz x ny x nx` grid whose pages are first
    /// touched from `workers` threads (see
    /// [`AlignedBuf::zeroed_parallel`]): large-grid allocation stops
    /// serializing on one zeroing loop and NUMA first-touch placement
    /// follows the threads that will sweep the data. Bit-identical to
    /// [`Self::zeros`].
    pub fn zeros_parallel(nz: usize, ny: usize, nx: usize, workers: usize) -> Self {
        let stride_y = round_up(nx.max(1), STRIDE_PAD);
        let stride_z = stride_y * ny;
        Self {
            buf: AlignedBuf::zeroed_parallel(nz * stride_z, workers),
            nz,
            ny,
            nx,
            stride_y,
            stride_z,
        }
    }

    /// Grid initialized from a function of `(z, y, x)`.
    pub fn from_fn(
        nz: usize,
        ny: usize,
        nx: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut g = Self::zeros(nz, ny, nx);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    g[(z, y, x)] = f(z, y, x);
                }
            }
        }
        g
    }

    /// Planes.
    #[inline(always)]
    pub fn nz(&self) -> usize {
        self.nz
    }
    /// Rows per plane.
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }
    /// Points per row.
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }
    /// Elements between consecutive rows.
    #[inline(always)]
    pub fn stride_y(&self) -> usize {
        self.stride_y
    }
    /// Elements between consecutive planes.
    #[inline(always)]
    pub fn stride_z(&self) -> usize {
        self.stride_z
    }

    /// Shared view of row `(z, y)`.
    #[inline(always)]
    pub fn row(&self, z: usize, y: usize) -> &[f64] {
        debug_assert!(z < self.nz && y < self.ny);
        let off = z * self.stride_z + y * self.stride_y;
        &self.buf[off..off + self.nx]
    }

    /// Mutable view of row `(z, y)`.
    #[inline(always)]
    pub fn row_mut(&mut self, z: usize, y: usize) -> &mut [f64] {
        debug_assert!(z < self.nz && y < self.ny);
        let off = z * self.stride_z + y * self.stride_y;
        &mut self.buf[off..off + self.nx]
    }

    /// Whole padded backing buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        self.buf.as_slice()
    }

    /// Whole padded backing buffer, mutable.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.buf.as_mut_slice()
    }

    /// Raw pointer to `(0,0,0)`.
    #[inline(always)]
    pub fn as_ptr(&self) -> *const f64 {
        self.buf.as_ptr()
    }

    /// Raw mutable pointer to `(0,0,0)`.
    #[inline(always)]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.buf.as_mut_ptr()
    }

    /// Logical contents without padding, flattened z-major.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.nz * self.ny * self.nx);
        for z in 0..self.nz {
            for y in 0..self.ny {
                out.extend_from_slice(self.row(z, y));
            }
        }
        out
    }

    /// Fill every logical cell with a constant.
    pub fn fill(&mut self, v: f64) {
        for z in 0..self.nz {
            for y in 0..self.ny {
                self.row_mut(z, y).fill(v);
            }
        }
    }
}

impl core::ops::Index<(usize, usize, usize)> for Grid3D {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (z, y, x): (usize, usize, usize)) -> &f64 {
        debug_assert!(z < self.nz && y < self.ny && x < self.nx);
        &self.buf[z * self.stride_z + y * self.stride_y + x]
    }
}

impl core::ops::IndexMut<(usize, usize, usize)> for Grid3D {
    #[inline(always)]
    fn index_mut(&mut self, (z, y, x): (usize, usize, usize)) -> &mut f64 {
        debug_assert!(z < self.nz && y < self.ny && x < self.nx);
        &mut self.buf[z * self.stride_z + y * self.stride_y + x]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let g = Grid3D::from_fn(2, 3, 5, |z, y, x| (z * 100 + y * 10 + x) as f64);
        assert_eq!(g[(1, 2, 4)], 124.0);
        assert_eq!(g.row(1, 2)[4], 124.0);
        assert_eq!(g.stride_y(), 8);
        assert_eq!(g.stride_z(), 24);
    }

    #[test]
    fn to_dense() {
        let g = Grid3D::from_fn(2, 2, 2, |z, y, x| (z * 4 + y * 2 + x) as f64);
        assert_eq!(g.to_dense(), (0..8).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn rows_are_aligned() {
        let g = Grid3D::zeros(2, 3, 13);
        for z in 0..2 {
            for y in 0..3 {
                assert_eq!(g.row(z, y).as_ptr() as usize % 64, 0);
            }
        }
    }
}
