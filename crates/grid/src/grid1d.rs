//! Dense 1D grid.

use crate::aligned::AlignedBuf;

/// A dense 1D grid of `f64` backed by an aligned buffer.
///
/// Boundary convention across the workspace: Jacobi sweeps update the
/// interior `[r, n-r)` for a radius-`r` stencil and copy the boundary
/// values through unchanged (Dirichlet).
#[derive(Clone, Debug, PartialEq)]
pub struct Grid1D {
    buf: AlignedBuf,
}

impl Grid1D {
    /// Zero-initialized grid of `n` points.
    pub fn zeros(n: usize) -> Self {
        Self {
            buf: AlignedBuf::zeroed(n),
        }
    }

    /// Grid initialized from a function of the index.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Self {
            buf: AlignedBuf::from_fn(n, f),
        }
    }

    /// Grid initialized from a slice.
    pub fn from_slice(s: &[f64]) -> Self {
        Self {
            buf: AlignedBuf::from_slice(s),
        }
    }

    /// Number of points.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// All points.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        self.buf.as_slice()
    }

    /// All points, mutable.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.buf.as_mut_slice()
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: f64) {
        self.buf.fill(v);
    }
}

impl core::ops::Index<usize> for Grid1D {
    type Output = f64;
    #[inline(always)]
    fn index(&self, i: usize) -> &f64 {
        &self.buf[i]
    }
}

impl core::ops::IndexMut<usize> for Grid1D {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.buf[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let mut g = Grid1D::from_fn(10, |i| i as f64);
        assert_eq!(g.len(), 10);
        assert_eq!(g[7], 7.0);
        g[7] = 1.5;
        assert_eq!(g.as_slice()[7], 1.5);
    }

    #[test]
    fn clone_is_deep() {
        let g = Grid1D::from_fn(5, |i| i as f64);
        let mut h = g.clone();
        h[0] = 42.0;
        assert_eq!(g[0], 0.0);
    }
}
