//! # stencil-grid
//!
//! Data-space substrate for the stencil library: cache-line-aligned `f64`
//! buffers ([`aligned::AlignedBuf`]), dense 1D/2D/3D grids with padded row
//! strides ([`Grid1D`], [`Grid2D`], [`Grid3D`]), Jacobi ping-pong pairs
//! ([`pingpong::PingPong`]), and the two memory-layout transforms the
//! paper contrasts:
//!
//! * the **local transpose layout** (§2.2) — every aligned `vl*vl` block
//!   transposed in place, an involution applied once before and once after
//!   a sweep ([`layout::TransposeLayout`]);
//! * the **DLT layout** (Henretty; §2.1) — a *global* dimension-lifted
//!   transpose into a separate buffer ([`layout::DltLayout`]), whose cost
//!   and locality loss are exactly what the paper's scheme avoids.
//!
//! ```
//! use stencil_grid::{Grid1D, Grid2D, PingPong};
//!
//! // Row-padded 2D grid: rows are aligned, so vector loads on any row
//! // start at a cache-line boundary.
//! let g = Grid2D::from_fn(3, 5, |y, x| (y * 5 + x) as f64);
//! assert_eq!(g.row(2)[4], 14.0);
//! assert!(g.stride() >= 5);
//!
//! // Jacobi ping-pong pair: write into dst, swap, read from current.
//! let mut pp = PingPong::new(Grid1D::zeros(8));
//! let (_src, dst) = pp.src_dst();
//! dst.as_mut_slice()[3] = 1.0;
//! pp.swap();
//! assert_eq!(pp.current().as_slice()[3], 1.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aligned;
pub mod grid1d;
pub mod grid2d;
pub mod grid3d;
pub mod layout;
pub mod pingpong;

pub use aligned::AlignedBuf;
pub use grid1d::Grid1D;
pub use grid2d::Grid2D;
pub use grid3d::Grid3D;
pub use pingpong::PingPong;

/// Maximum absolute difference between two equal-length slices.
///
/// The workhorse of every cross-executor correctness test in the
/// workspace.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Relative L2 error `||a-b|| / max(||b||, eps)`.
pub fn rel_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    num.sqrt() / den.sqrt().max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_helpers() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.0];
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(rel_l2_error(&a, &a) == 0.0);
        assert!(rel_l2_error(&a, &b) > 0.0);
    }

    #[test]
    #[should_panic]
    fn diff_len_mismatch_panics() {
        max_abs_diff(&[1.0], &[1.0, 2.0]);
    }
}
