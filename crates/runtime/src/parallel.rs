//! `parallel_for` helpers over a [`crate::ThreadPool`].

use crate::ThreadPool;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Split `0..n` into `parts` near-equal contiguous ranges (first
/// `n % parts` ranges get one extra element). Empty ranges are possible
/// when `parts > n`.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Static-schedule parallel for: worker `w` processes the `w`-th
/// contiguous chunk of `0..n`. Matches OpenMP `schedule(static)`, which
/// the reference stencil codes use; contiguous chunks also preserve NUMA
/// first-touch locality.
pub fn parallel_for_static<F>(pool: &ThreadPool, n: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    let ranges = chunk_ranges(n, pool.threads());
    pool.run(&|w| {
        let r = ranges[w].clone();
        if !r.is_empty() {
            body(r);
        }
    });
}

/// Dynamic-schedule parallel for: workers grab `grain`-sized chunks from
/// an atomic cursor. Use for irregular tiles (tessellation boundary tiles
/// are smaller than interior ones).
pub fn parallel_for<F>(pool: &ThreadPool, n: usize, grain: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let cursor = AtomicUsize::new(0);
    pool.run(&|_| loop {
        let start = cursor.fetch_add(grain, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + grain).min(n);
        body(start..end);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8] {
                let rs = chunk_ranges(n, parts);
                assert_eq!(rs.len(), parts);
                let mut covered = vec![false; n];
                for r in &rs {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} parts={parts}");
                // contiguous and ordered
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn static_for_touches_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 1000;
        let hits = Mutex::new(vec![0u32; n]);
        parallel_for_static(&pool, n, &|r| {
            let mut h = hits.lock();
            for i in r {
                h[i] += 1;
            }
        });
        assert!(hits.lock().iter().all(|&h| h == 1));
    }

    #[test]
    fn dynamic_for_touches_every_index_once() {
        let pool = ThreadPool::new(5);
        let n = 997; // prime: exercises ragged last chunk
        let hits = Mutex::new(vec![0u32; n]);
        parallel_for(&pool, n, 13, &|r| {
            let mut h = hits.lock();
            for i in r {
                h[i] += 1;
            }
        });
        assert!(hits.lock().iter().all(|&h| h == 1));
    }

    #[test]
    fn dynamic_for_zero_items_is_noop() {
        let pool = ThreadPool::new(2);
        parallel_for(&pool, 0, 4, &|_r| panic!("must not be called"));
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let pool = ThreadPool::new(8);
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let total = Mutex::new(0.0f64);
        parallel_for_static(&pool, data.len(), &|r| {
            let part: f64 = data[r].iter().sum();
            *total.lock() += part;
        });
        let serial: f64 = data.iter().sum();
        assert!((*total.lock() - serial).abs() < 1e-9);
    }
}
