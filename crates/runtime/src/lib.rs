//! # stencil-runtime
//!
//! Thread runtime for the tiled stencil executors: a persistent worker
//! pool ([`pool::ThreadPool`]) with blocking fork-join semantics, plus
//! static and dynamic `parallel_for` helpers ([`parallel`]).
//!
//! `rayon` is not on this project's allowed dependency list, so the pool
//! is built directly on `std::thread` plus the poison-free `Mutex`/
//! `Condvar` wrappers in [`sync`] — the crate has zero dependencies.
//! The design is the classic epoch/condvar fork-join: the calling thread
//! publishes a job, participates as worker 0, and blocks until every
//! worker has finished the job — giving each `run` call an implicit
//! barrier, which is exactly the phase semantics tessellate tiling needs
//! (one `run` per tessellation stage).
//!
//! ```
//! use stencil_runtime::{parallel_for_static, ThreadPool};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let sum = AtomicU64::new(0);
//! parallel_for_static(&pool, 1000, &|range| {
//!     let part: u64 = range.map(|i| i as u64).sum();
//!     sum.fetch_add(part, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod parallel;
pub mod pool;
pub mod sync;

pub use parallel::{chunk_ranges, parallel_for, parallel_for_static};
pub use pool::{purge_shared, PoolHandle, ThreadPool};

/// Number of hardware threads (fallback 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
