//! Persistent fork-join worker pool.

use crate::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased job pointer. The pool guarantees the referenced closure
/// outlives its use: `run` does not return until every worker has
/// finished the job, so extending the lifetime to `'static` inside the
/// pool is sound (same argument as scoped threads).
type Job = &'static (dyn Fn(usize) + Sync);

struct State {
    job: Option<Job>,
    epoch: u64,
    /// Workers still executing the current job.
    active: usize,
    /// A worker's job closure panicked during the current job; the
    /// panic is re-raised on the calling thread when the job completes.
    worker_panicked: bool,
    /// A single-thread pool is executing its job inline (serializes
    /// concurrent callers on the `threads == 1` fast path).
    inline_busy: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
}

std::thread_local! {
    /// Identity of the pool whose job this thread is currently
    /// executing (null when idle). Used to turn reentrant `run` calls —
    /// a job launching a job on its own pool, which can only deadlock —
    /// into an immediate panic with a diagnostic.
    static ACTIVE_POOL: std::cell::Cell<*const ()> =
        const { std::cell::Cell::new(std::ptr::null()) };
}

/// Run `f` with this thread marked as executing a job of `pool`,
/// restoring the previous marker afterwards — including on unwind, so a
/// panicking job cannot leave the reentrancy marker dirty. (A job may
/// legitimately drive a *different* pool; the marker nests.)
fn with_active_pool<R>(pool: *const (), f: impl FnOnce() -> R) -> R {
    struct Restore(*const ());
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE_POOL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(ACTIVE_POOL.with(|c| c.replace(pool)));
    f()
}

/// A fixed-size pool of `threads` workers (the creating thread counts as
/// worker 0 and participates in every job).
///
/// ```
/// use stencil_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(&|worker| {
///     assert!(worker < 4);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool with `threads` total workers (min 1). `threads - 1`
    /// OS threads are spawned; the caller is worker 0.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                active: 0,
                worker_panicked: false,
                inline_busy: false,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stencil-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// Total worker count (including the caller).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f(worker_id)` on every worker, blocking until all have
    /// returned. Acts as a barrier: no worker can observe state from a
    /// later `run` while another is still inside this one.
    ///
    /// Concurrent `run` calls from different threads (e.g. through
    /// cloned [`PoolHandle`]s) are serialized: a caller waits until the
    /// in-flight job has fully completed before publishing its own.
    pub fn run<F>(&self, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        let id = Arc::as_ptr(&self.shared) as *const ();
        if self.threads == 1 {
            // Reentrancy is harmless without workers: the nested call is
            // an ordinary inline invocation (this thread already holds
            // `inline_busy`, so it must not wait on itself).
            if ACTIVE_POOL.with(|c| c.get()) == id {
                f(0);
                return;
            }
            // No workers to publish to, but concurrent callers through
            // cloned handles must still serialize (documented contract).
            {
                let mut st = self.shared.state.lock();
                while st.inline_busy {
                    self.shared.job_done.wait(&mut st);
                }
                st.inline_busy = true;
            }
            struct InlineGuard<'a>(&'a Shared);
            impl Drop for InlineGuard<'_> {
                fn drop(&mut self) {
                    self.0.state.lock().inline_busy = false;
                    self.0.job_done.notify_all();
                }
            }
            let _guard = InlineGuard(&self.shared);
            let _span = stencil_obs::span(stencil_obs::SpanId::WorkerJob);
            with_active_pool(id, || f(0));
            return;
        }
        // With real workers, a job launching a job on its own pool can
        // only deadlock — fail loudly instead.
        assert!(
            ACTIVE_POOL.with(|c| c.get()) != id,
            "reentrant ThreadPool::run: a job may not launch another job on its own pool"
        );
        let job: &(dyn Fn(usize) + Sync) = f;
        // SAFETY: `run` blocks until every worker has finished with `job`,
        // so the reference never outlives the closure it points to.
        let job: Job = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.shared.state.lock();
            // Serialize with any in-flight job from another caller; the
            // finishing caller clears `job` and notifies `job_done`.
            while st.job.is_some() {
                self.shared.job_done.wait(&mut st);
            }
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.threads - 1;
            self.shared.job_ready.notify_all();
        }
        // From here to the end of the job, cleanup must happen even if
        // `f(0)` panics on this thread: the guard waits for the workers
        // (the transmuted `job` reference must not outlive this frame),
        // clears the job slot, and wakes queued callers — on both the
        // normal and the unwind path. Without it, a caught panic would
        // leave `job` set and deadlock every later `run` on this pool.
        // A panic observed on a *worker* thread is re-raised here, on
        // the calling thread, once the job has fully drained.
        struct JobGuard<'a>(&'a Shared);
        impl Drop for JobGuard<'_> {
            fn drop(&mut self) {
                let mut st = self.0.state.lock();
                while st.active > 0 {
                    self.0.job_done.wait(&mut st);
                }
                st.job = None;
                let worker_panicked = std::mem::take(&mut st.worker_panicked);
                drop(st);
                self.0.job_done.notify_all();
                if worker_panicked && !std::thread::panicking() {
                    panic!("a ThreadPool job panicked on a worker thread");
                }
            }
        }
        let _guard = JobGuard(&self.shared);
        // Participate as worker 0.
        let _span = stencil_obs::span(stencil_obs::SpanId::WorkerJob);
        with_active_pool(id, || f(0));
    }
}

/// Cheaply cloneable, shareable handle to a [`ThreadPool`].
///
/// A compiled execution plan (or several) can hold clones of the same
/// handle, so the worker threads are spawned once and amortized across
/// every run — the "setup cost paid once" discipline the tiled executors
/// are built around. Dereferences to [`ThreadPool`].
///
/// The underlying pool serves one fork-join job at a time; concurrent
/// `run` calls through cloned handles are safe and serialize against
/// each other. Use separate handles when plans must actually execute
/// in parallel with one another.
///
/// ```
/// use stencil_runtime::PoolHandle;
///
/// let a = PoolHandle::new(3);
/// let b = a.clone(); // same worker threads, no respawn
/// assert_eq!(a.threads(), b.threads());
/// assert!(PoolHandle::ptr_eq(&a, &b));
/// ```
#[derive(Clone)]
pub struct PoolHandle(Arc<ThreadPool>);

impl PoolHandle {
    /// Spawn a pool with `threads` total workers and wrap it in a
    /// shareable handle.
    pub fn new(threads: usize) -> Self {
        Self(Arc::new(ThreadPool::new(threads)))
    }

    /// A process-wide shared pool of `threads` workers: the first call
    /// per thread count spawns the pool, every later call clones the
    /// same handle. Repeated short-lived consumers — the autotuner's
    /// probe sessions, benchmark cells, ad-hoc plans — amortize one set
    /// of worker threads instead of respawning per use.
    ///
    /// Shared pools live until [`purge_shared`] releases the unused
    /// ones (at most one per distinct thread count). Callers that need
    /// a private pool — e.g. plans that must run concurrently with each
    /// other — should use [`PoolHandle::new`].
    pub fn shared(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut reg = SHARED_POOLS.lock();
        if let Some((_, h)) = reg.iter().find(|(n, _)| *n == threads) {
            return h.clone();
        }
        let h = PoolHandle::new(threads);
        reg.push((threads, h.clone()));
        h
    }

    /// True when both handles point at the same worker pool.
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Number of live handles to this pool, this one included (the
    /// shared registry's own clone counts). Lets a long-running service
    /// report how many plans still pin a pool before deciding to
    /// [`purge_shared`].
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

/// Registry behind [`PoolHandle::shared`].
static SHARED_POOLS: Mutex<Vec<(usize, PoolHandle)>> = Mutex::new(Vec::new());

/// Release every shared pool no handle outside the registry still
/// uses, joining its worker threads; returns how many pools were torn
/// down. The shutdown hook for long-running services: after the last
/// plan that pinned a shared pool is dropped, `purge_shared` reclaims
/// the idle OS threads instead of leaking them for the rest of the
/// process. Pools that are still referenced stay registered, and a
/// later [`PoolHandle::shared`] call simply respawns a purged size.
pub fn purge_shared() -> usize {
    // Drop outside the lock: ThreadPool::drop joins worker threads, and
    // holding the registry lock across a join would stall every
    // concurrent shared() caller behind thread teardown.
    let purged: Vec<PoolHandle> = {
        let mut reg = SHARED_POOLS.lock();
        let mut out = Vec::new();
        reg.retain(|(_, h)| {
            if h.strong_count() == 1 {
                out.push(h.clone());
                false
            } else {
                true
            }
        });
        out
    };
    let n = purged.len();
    drop(purged);
    n
}

impl From<ThreadPool> for PoolHandle {
    fn from(pool: ThreadPool) -> Self {
        Self(Arc::new(pool))
    }
}

impl std::ops::Deref for PoolHandle {
    type Target = ThreadPool;

    fn deref(&self) -> &ThreadPool {
        &self.0
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle")
            .field("threads", &self.0.threads())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                shared.job_ready.wait(&mut st);
            }
        };
        // Catch job panics so a dying closure cannot strand the barrier:
        // `active` is always decremented, the worker thread survives for
        // future jobs, and the panic is re-raised on the calling thread
        // by its JobGuard. AssertUnwindSafe is justified because the
        // caller observes the panic before `run` returns.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = stencil_obs::span(stencil_obs::SpanId::WorkerJob);
            with_active_pool(shared as *const Shared as *const (), || job(id))
        }));
        let mut st = shared.state.lock();
        if result.is_err() {
            st.worker_panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_once() {
        let pool = ThreadPool::new(6);
        let count = AtomicUsize::new(0);
        let ids = Mutex::new(Vec::new());
        pool.run(&|id| {
            count.fetch_add(1, Ordering::SeqCst);
            ids.lock().push(id);
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
        let mut ids = ids.into_inner();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_is_reusable_and_barriered() {
        let pool = ThreadPool::new(4);
        let acc = AtomicUsize::new(0);
        for round in 1..=10 {
            pool.run(&|_| {
                acc.fetch_add(1, Ordering::SeqCst);
            });
            // Implicit barrier: after run returns, all 4 increments landed.
            assert_eq!(acc.load(Ordering::SeqCst), round * 4);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let flag = AtomicUsize::new(0);
        pool.run(&|id| {
            assert_eq!(id, 0);
            flag.store(1, Ordering::SeqCst);
        });
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn pool_survives_a_panicking_job_on_worker_zero() {
        let pool = PoolHandle::new(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|id| {
                if id == 0 {
                    panic!("job failure on the calling thread");
                }
            });
        }));
        assert!(caught.is_err());
        // the job slot and the reentrancy marker were cleaned up on
        // unwind: later runs on the same pool complete normally
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_job_panic_propagates_and_pool_survives() {
        let pool = PoolHandle::new(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|id| {
                if id == 1 {
                    panic!("job failure on a worker thread");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must re-raise on the caller");
        // every worker is still alive and the job slot is clean
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn single_thread_pool_serializes_concurrent_callers() {
        // the threads == 1 fast path must honor the same serialization
        // contract as the worker path
        let pool = PoolHandle::new(1);
        let inside = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let (pool, inside, max_seen) =
                (pool.clone(), Arc::clone(&inside), Arc::clone(&max_seen));
            joins.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    pool.run(&|_| {
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_micros(50));
                        inside.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "jobs overlapped");
    }

    #[test]
    fn concurrent_runs_through_shared_handles_serialize() {
        // two threads hammer the same pool through cloned handles; every
        // run must execute on all workers exactly once (no lost or
        // overwritten jobs)
        let pool = PoolHandle::new(3);
        let count = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let pool = pool.clone();
            let count = Arc::clone(&count);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    pool.run(&|_| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(count.load(Ordering::SeqCst), 2 * 50 * 3);
    }

    #[test]
    fn shared_registry_returns_one_pool_per_thread_count() {
        let a = PoolHandle::shared(3);
        let b = PoolHandle::shared(3);
        let c = PoolHandle::shared(2);
        assert!(PoolHandle::ptr_eq(&a, &b));
        assert!(!PoolHandle::ptr_eq(&a, &c));
        assert_eq!(a.threads(), 3);
        assert_eq!(c.threads(), 2);
        // clamps like PoolHandle::new and still deduplicates
        let z = PoolHandle::shared(0);
        assert!(PoolHandle::ptr_eq(&z, &PoolHandle::shared(1)));
        let hits = AtomicUsize::new(0);
        b.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn purge_releases_only_unreferenced_shared_pools() {
        // distinct thread counts so parallel tests' shared pools are
        // not disturbed mid-assertion
        let held = PoolHandle::shared(7);
        {
            let dropped = PoolHandle::shared(9);
            assert_eq!(dropped.threads(), 9);
        }
        // `held` is pinned outside the registry (count 2: us + registry),
        // the 9-thread pool is pinned only by the registry
        assert!(held.strong_count() >= 2);
        let released = purge_shared();
        assert!(released >= 1, "the unreferenced 9-thread pool must go");
        // the held pool survived the purge and still works
        let again = PoolHandle::shared(7);
        assert!(PoolHandle::ptr_eq(&held, &again));
        let hits = AtomicUsize::new(0);
        held.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 7);
        // a purged size respawns fresh on the next request
        let respawned = PoolHandle::shared(9);
        assert_eq!(respawned.threads(), 9);
        drop(held);
        drop(again);
        drop(respawned);
        purge_shared();
    }

    #[test]
    fn handle_shares_one_pool() {
        let a = PoolHandle::new(4);
        let b = a.clone();
        let c = PoolHandle::new(4);
        assert!(PoolHandle::ptr_eq(&a, &b));
        assert!(!PoolHandle::ptr_eq(&a, &c));
        // both clones drive the same workers
        let hits = AtomicUsize::new(0);
        a.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        b.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn borrows_local_state_safely() {
        // The lifetime-erasure safety argument in action: job borrows a
        // stack-local Vec through &Mutex.
        let pool = ThreadPool::new(3);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let sum = Mutex::new(0.0);
        pool.run(&|id| {
            let part: f64 = data.iter().skip(id).step_by(3).sum();
            *sum.lock() += part;
        });
        assert_eq!(*sum.lock(), (0..100).sum::<usize>() as f64);
    }
}
