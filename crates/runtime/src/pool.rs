//! Persistent fork-join worker pool.

use crate::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased job pointer. The pool guarantees the referenced closure
/// outlives its use: `run` does not return until every worker has
/// finished the job, so extending the lifetime to `'static` inside the
/// pool is sound (same argument as scoped threads).
type Job = &'static (dyn Fn(usize) + Sync);

struct State {
    job: Option<Job>,
    epoch: u64,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
}

/// A fixed-size pool of `threads` workers (the creating thread counts as
/// worker 0 and participates in every job).
///
/// ```
/// use stencil_runtime::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(&|worker| {
///     assert!(worker < 4);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool with `threads` total workers (min 1). `threads - 1`
    /// OS threads are spawned; the caller is worker 0.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                active: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stencil-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// Total worker count (including the caller).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f(worker_id)` on every worker, blocking until all have
    /// returned. Acts as a barrier: no worker can observe state from a
    /// later `run` while another is still inside this one.
    pub fn run<F>(&self, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            f(0);
            return;
        }
        let job: &(dyn Fn(usize) + Sync) = f;
        // SAFETY: `run` blocks until every worker has finished with `job`,
        // so the reference never outlives the closure it points to.
        let job: Job = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.job.is_none(), "nested run on the same pool");
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.threads - 1;
            self.shared.job_ready.notify_all();
        }
        // Participate as worker 0.
        f(0);
        let mut st = self.shared.state.lock();
        while st.active > 0 {
            self.shared.job_done.wait(&mut st);
        }
        st.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                shared.job_ready.wait(&mut st);
            }
        };
        job(id);
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_once() {
        let pool = ThreadPool::new(6);
        let count = AtomicUsize::new(0);
        let ids = Mutex::new(Vec::new());
        pool.run(&|id| {
            count.fetch_add(1, Ordering::SeqCst);
            ids.lock().push(id);
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
        let mut ids = ids.into_inner();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_is_reusable_and_barriered() {
        let pool = ThreadPool::new(4);
        let acc = AtomicUsize::new(0);
        for round in 1..=10 {
            pool.run(&|_| {
                acc.fetch_add(1, Ordering::SeqCst);
            });
            // Implicit barrier: after run returns, all 4 increments landed.
            assert_eq!(acc.load(Ordering::SeqCst), round * 4);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let flag = AtomicUsize::new(0);
        pool.run(&|id| {
            assert_eq!(id, 0);
            flag.store(1, Ordering::SeqCst);
        });
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn borrows_local_state_safely() {
        // The lifetime-erasure safety argument in action: job borrows a
        // stack-local Vec through &Mutex.
        let pool = ThreadPool::new(3);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let sum = Mutex::new(0.0);
        pool.run(&|id| {
            let part: f64 = data.iter().skip(id).step_by(3).sum();
            *sum.lock() += part;
        });
        assert_eq!(*sum.lock(), (0..100).sum::<usize>() as f64);
    }
}
