//! Poison-free `Mutex`/`Condvar` wrappers over `std::sync`.
//!
//! The pool originally targeted `parking_lot`'s ergonomics (`lock()`
//! returns a guard directly, `Condvar::wait` takes `&mut guard`). The
//! build environment is offline, so this module provides the same surface
//! on top of the standard library, keeping the runtime crate
//! dependency-free. Poisoning is deliberately ignored: a worker that
//! panics while holding the state lock leaves a consistent `State` (all
//! mutations are single-field writes), and propagating poison would turn
//! one failed test into a hang for every later `run` call.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutual exclusion with `parking_lot`-style `lock() -> guard` semantics.
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is an implementation detail of [`Condvar::wait`],
/// which must move the std guard out and back; it is `Some` at every
/// observable point.
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

/// Condition variable whose `wait` takes the guard by `&mut`, matching
/// `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard`'s lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake every thread parked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one thread parked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_notify_roundtrip() {
        struct Shared {
            flag: Mutex<bool>,
            cv: Condvar,
        }
        let shared = Arc::new(Shared {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        });
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let mut g = s2.flag.lock();
            while !*g {
                s2.cv.wait(&mut g);
            }
        });
        *shared.flag.lock() = true;
        shared.cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
