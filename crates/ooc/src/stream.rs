//! The streaming temporal-blocked executor.
//!
//! A run of `t` steps becomes a sequence of **passes**; each pass
//! advances the whole domain by `s` steps by marching halo-widened
//! z-slab windows through a bounded resident buffer pool:
//!
//! ```text
//! pass (s steps, surface S -> 1-S):
//!   for each window k (interior [lo, hi), slab [slo, shi)):
//!     load  planes [slo, shi) of surface S           (slab + halo)
//!     run   plan.run_3d_at(window, s, slo)           (origin-anchored)
//!     store planes [lo, hi) to surface 1-S           (interior only)
//!   commit: sync, flip surface, round += s
//! ```
//!
//! Temporal blocking is the whole economy: every slab crosses the IO
//! boundary **once per pass of `s` steps** instead of once per step —
//! `s` defaults to the largest value the memory budget can carry. Pass
//! lengths are multiples of the plan's [`pass_quantum`] (the fold
//! factor `m`, times the tessellate round block where applicable), so
//! the concatenated passes execute exactly the resident run's sequence
//! of folded macro-steps, per-round time blocks and tail steps; window
//! geometry reuses the serving sharder's halo arithmetic
//! ([`shard_geometry`] / [`slab_bounds`]) and the origin-anchored
//! `run_3d_at` tile phase — which together make the streamed result
//! **bit-identical** to the resident run.
//!
//! With [`OocConfig::prefetch`] set, a background IO thread loads
//! window `k + 1` and writes back window `k - 1` while the plan's pool
//! sweeps window `k`; the sweep only stalls (counted in
//! [`StoreStats::stall_us`]) when a load has not landed by the time it
//! is needed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use stencil_core::slab::{
    interior_ranges, pass_quantum, shard_geometry, shardable, slab_bounds, SLAB_ALIGN,
};
use stencil_core::Plan;
use stencil_faults::Failpoint;
use stencil_grid::Grid3D;

use crate::error::OocError;
use crate::store::{SlabStore, StoreStats};

/// Resident windows a prefetching run holds at peak: the window being
/// swept, the sweep's internal pingpong pair, the prefetched next
/// window and the previous window's output awaiting writeback.
pub const RESIDENT_WINDOWS_PREFETCH: usize = 5;
/// Resident windows a synchronous run holds at peak: the window being
/// swept and the sweep's internal pingpong pair.
pub const RESIDENT_WINDOWS_SYNC: usize = 3;

/// Streaming executor knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocConfig {
    /// Resident-memory budget in bytes for window buffers. The
    /// executor sizes windows so that its peak buffer residency
    /// (`RESIDENT_WINDOWS_*` windows) stays within this budget.
    pub budget_bytes: usize,
    /// Steps per pass — the temporal-blocking depth. `0` (the default)
    /// means "as many as the budget allows"; other values are rounded
    /// to the plan's composition quantum. Deeper passes cross the IO
    /// boundary less often but carry deeper halos.
    pub steps_per_pass: usize,
    /// Overlap IO with compute on a background thread (default true).
    pub prefetch: bool,
}

impl Default for OocConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 256 << 20,
            steps_per_pass: 0,
            prefetch: true,
        }
    }
}

/// What a streaming run did, for benches and the serve stats surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Passes executed (IO round trips per slab).
    pub passes: usize,
    /// Steps advanced per full-depth pass.
    pub steps_per_pass: usize,
    /// Windows per pass (of the first, deepest pass).
    pub windows_per_pass: usize,
    /// Planes of the widest window (slab + halo).
    pub window_planes: usize,
    /// Peak resident window bytes the executor accounted for —
    /// guaranteed `<=` the configured budget.
    pub resident_bytes: usize,
    /// Microseconds the sweep thread was *blocked* on IO during this
    /// run: all of it in synchronous mode, only the prefetch stalls
    /// (plus store spill/materialize when run via
    /// [`run_streaming_grid`]) when prefetching.
    pub io_blocked_us: u64,
    /// Microseconds of IO the prefetch pipeline ran in the background
    /// while compute proceeded — data movement hidden under arithmetic.
    /// Zero in synchronous mode.
    pub io_overlap_us: u64,
    /// Store IO counters accumulated over the run.
    pub stats: StoreStats,
}

/// True when `plan` can stream through a [`SlabStore`] bit-exactly:
/// 3D, and slab-shardable (see [`stencil_core::slab::shardable`]).
pub fn streamable(plan: &Plan) -> bool {
    plan.dims() == 3 && shardable(plan)
}

/// Resident bytes of one z plane (padded row stride, as the window
/// buffers store it).
fn plane_resident_bytes(ny: usize, nx: usize) -> usize {
    Grid3D::zeros(1, ny, nx).stride_z() * 8
}

/// One pass's window geometry: `(lo, hi, slab_lo, slab_hi)` per window.
struct PassGeom {
    windows: Vec<(usize, usize, usize, usize)>,
}

/// Smallest slab span a pass of `s` steps may run: the tessellate
/// minimum span, and in all cases enough planes to clear the Dirichlet
/// band of the deepest kernel the pass runs (`2 * band + 1` — the
/// "2R+1 planes" floor).
fn span_floor(plan: &Plan, s: usize, min_span: usize) -> usize {
    let band = if s >= plan.m().max(1) {
        plan.effective_radius()
    } else {
        plan.pattern().radius()
    };
    min_span.max(2 * band + 1)
}

/// Lay out the windows of a pass of `s` steps under a budget of
/// `cap_planes` resident planes per window, or `None` when no window
/// count satisfies both the cap and the span floor.
fn plan_pass(
    plan: &Plan,
    (nz, ny, nx): (usize, usize, usize),
    s: usize,
    cap_planes: usize,
) -> Option<PassGeom> {
    let (halo, min_span) = shard_geometry(plan, s, nz, &[ny, nx]);
    let r_eff = plan.effective_radius();
    let floor = span_floor(plan, s, min_span);
    if cap_planes < floor {
        return None;
    }
    // start from the fewest windows whose slabs can fit the cap and
    // grow until they do; growing further only shrinks spans, so the
    // floor check at that point is conclusive
    let per = cap_planes.saturating_sub(2 * halo + 2 * SLAB_ALIGN).max(1);
    let mut w = nz.div_ceil(per).max(1);
    loop {
        if w > nz {
            return None;
        }
        let windows: Vec<_> = interior_ranges(nz, w)
            .into_iter()
            .map(|(lo, hi)| {
                let (slo, shi) = slab_bounds(lo, hi, nz, halo, r_eff);
                (lo, hi, slo, shi)
            })
            .collect();
        if windows
            .iter()
            .all(|&(_, _, slo, shi)| shi - slo <= cap_planes)
        {
            if windows.iter().all(|&(_, _, slo, shi)| shi - slo >= floor) {
                return Some(PassGeom { windows });
            }
            return None;
        }
        w += 1;
    }
}

/// A bounded freelist of window buffers: windows are recycled across
/// loads and outputs instead of reallocated, and at most `cap` spares
/// are retained. New buffers are first-touched in parallel by the
/// plan's worker count.
struct WindowPool {
    spare: Vec<Grid3D>,
    cap: usize,
    workers: usize,
}

impl WindowPool {
    fn new(cap: usize, workers: usize) -> Self {
        Self {
            spare: Vec::new(),
            cap,
            workers,
        }
    }

    fn acquire(&mut self, nz: usize, ny: usize, nx: usize) -> Grid3D {
        if let Some(i) = self
            .spare
            .iter()
            .position(|g| (g.nz(), g.ny(), g.nx()) == (nz, ny, nx))
        {
            return self.spare.swap_remove(i);
        }
        Grid3D::zeros_parallel(nz, ny, nx, self.workers)
    }

    fn release(&mut self, g: Grid3D) {
        if self.spare.len() < self.cap {
            self.spare.push(g);
        }
    }
}

enum IoReq {
    Load {
        idx: usize,
        surface: u64,
        z0: usize,
        z1: usize,
        buf: Grid3D,
    },
    Store {
        surface: u64,
        z_global: usize,
        grid: Grid3D,
        z_lo: usize,
        z_hi: usize,
    },
}

enum IoDone {
    Loaded {
        idx: usize,
        buf: Grid3D,
        res: Result<(), OocError>,
    },
    Stored {
        buf: Grid3D,
        res: Result<(), OocError>,
    },
}

/// Run `t` steps of `plan` on the domain in `store`, streaming windows
/// within `cfg.budget_bytes` of resident buffer memory. On success the
/// store's current surface holds the advanced domain (`round()` is
/// bumped by `t`) and the report carries the pass/window geometry and
/// IO stats. The result is bit-identical to the resident
/// `plan.run_3d(grid, t)`.
///
/// On failure mid-pass the store is left dirty, so a subsequent
/// [`SlabStore::open`] reports it as crashed instead of serving
/// mixed-round data.
pub fn run_streaming(
    plan: &Plan,
    store: &SlabStore,
    t: usize,
    cfg: &OocConfig,
) -> Result<StreamReport, OocError> {
    if !streamable(plan) {
        return Err(OocError::UnsupportedPlan {
            reason: "streaming needs a 3D slab-shardable plan \
                     (natural layout, block-free or tessellate tiling)",
        });
    }
    let shape = store.shape();
    let (nz, ny, nx) = shape;
    if nz == 0 || ny == 0 || nx == 0 {
        return Err(OocError::UnsupportedPlan {
            reason: "empty domain",
        });
    }
    let mut report = StreamReport::default();
    if t == 0 {
        return Ok(report);
    }

    let plane = plane_resident_bytes(ny, nx);
    let residency = if cfg.prefetch {
        RESIDENT_WINDOWS_PREFETCH
    } else {
        RESIDENT_WINDOWS_SYNC
    };
    let cap_planes = cfg.budget_bytes / residency.max(1) / plane.max(1);

    // deepest pass the budget can carry: multiples of the composition
    // quantum (or a single pass of all t steps), descending
    let u = pass_quantum(plan, &[nz, ny, nx]);
    let want = match cfg.steps_per_pass {
        0 => t,
        w => w.min(t),
    };
    let mut s = if want >= t { t } else { (want / u).max(1) * u };
    let geom = loop {
        if let Some(g) = plan_pass(plan, shape, s, cap_planes) {
            break g;
        }
        if s <= u {
            // even the shallowest legal pass does not fit: report the
            // smallest budget that would
            let (halo, min_span) = shard_geometry(plan, s, nz, &[ny, nx]);
            let needed_planes = span_floor(plan, s, min_span).max(2 * halo + 1) + 2 * SLAB_ALIGN;
            return Err(OocError::BudgetTooSmall {
                budget: cfg.budget_bytes,
                needed: needed_planes.min(nz) * plane * residency,
            });
        }
        s = ((s - 1) / u).max(1) * u;
    };

    report.steps_per_pass = s;
    report.windows_per_pass = geom.windows.len();
    report.window_planes = geom
        .windows
        .iter()
        .map(|&(_, _, slo, shi)| shi - slo)
        .max()
        .unwrap_or(0);
    report.resident_bytes = residency * report.window_planes * plane;
    debug_assert!(report.resident_bytes <= cfg.budget_bytes);

    let mut pool = WindowPool::new(2, plan.pool().threads());
    let stats0 = store.stats();
    let mut remaining = t;
    while remaining > 0 {
        let s_pass = s.min(remaining);
        // the final pass may be shallower (it takes the t % quantum
        // tail); its shallower halo always fits where the deep one did
        let geom = plan_pass(plan, shape, s_pass, cap_planes)
            .expect("a shallower pass fits wherever the deep pass fits");
        store.begin_pass()?;
        if cfg.prefetch {
            run_pass_prefetch(plan, store, s_pass, &geom, &mut pool)?;
        } else {
            run_pass_sync(plan, store, s_pass, &geom, &mut pool)?;
        }
        store.commit_pass(s_pass as u64)?;
        report.passes += 1;
        remaining -= s_pass;
    }
    report.stats = store.stats();
    // Split this run's IO time (stores are reusable, so deltas) into
    // sweep-blocking vs. hidden-under-compute. Synchronously, every IO
    // microsecond blocked the sweep; under prefetch only the stalls did,
    // and the rest ran concurrently with compute.
    let io_delta = report.stats.io_us.saturating_sub(stats0.io_us);
    let stall_delta = report.stats.stall_us.saturating_sub(stats0.stall_us);
    if cfg.prefetch {
        report.io_blocked_us = stall_delta;
        report.io_overlap_us = io_delta.saturating_sub(stall_delta);
    } else {
        report.io_blocked_us = io_delta;
    }
    Ok(report)
}

fn run_pass_sync(
    plan: &Plan,
    store: &SlabStore,
    s: usize,
    geom: &PassGeom,
    pool: &mut WindowPool,
) -> Result<(), OocError> {
    let (_, ny, nx) = store.shape();
    let src = store.surface();
    let mut scratch = Vec::new();
    for &(lo, hi, slo, shi) in &geom.windows {
        let mut win = pool.acquire(shi - slo, ny, nx);
        {
            let _span = stencil_obs::span(stencil_obs::SpanId::OocLoad);
            store.read_window(src, slo, shi, &mut win, &mut scratch)?;
        }
        let out = {
            let _span = stencil_obs::span(stencil_obs::SpanId::OocCompute);
            plan.run_3d_at(&win, s, slo)?
        };
        pool.release(win);
        {
            let _span = stencil_obs::span(stencil_obs::SpanId::OocWriteback);
            store.write_planes(1 - src, lo, &out, lo - slo, hi - slo)?;
        }
        pool.release(out);
    }
    Ok(())
}

fn run_pass_prefetch(
    plan: &Plan,
    store: &SlabStore,
    s: usize,
    geom: &PassGeom,
    pool: &mut WindowPool,
) -> Result<(), OocError> {
    let (_, ny, nx) = store.shape();
    let src = store.surface();
    let windows = &geom.windows;
    std::thread::scope(|scope| -> Result<(), OocError> {
        let (req_tx, req_rx) = mpsc::channel::<IoReq>();
        let (done_tx, done_rx) = mpsc::channel::<IoDone>();
        // the IO thread borrows the store (positioned reads/writes, no
        // shared cursor) and exits when the request channel closes —
        // the scope guarantees it is joined before this function
        // returns, so no thread or buffer can leak. Its spans carry the
        // sweep thread's job tag so traces group the background IO with
        // the job it serves.
        let job = stencil_obs::current_job();
        scope.spawn(move || {
            stencil_obs::with_job(job, || {
                let mut scratch = Vec::new();
                for req in req_rx {
                    let done = match req {
                        IoReq::Load {
                            idx,
                            surface,
                            z0,
                            z1,
                            mut buf,
                        } => {
                            let _span = stencil_obs::span(stencil_obs::SpanId::OocPrefetch);
                            // the prefetch failpoint fails the whole
                            // background load; the sweep thread degrades
                            // to a synchronous re-read instead of
                            // failing the pass
                            let res = if stencil_faults::should_fire(Failpoint::OocPrefetch) {
                                Err(OocError::Io(stencil_faults::injected_io_error(
                                    Failpoint::OocPrefetch,
                                )))
                            } else {
                                store.read_window(surface, z0, z1, &mut buf, &mut scratch)
                            };
                            IoDone::Loaded { idx, buf, res }
                        }
                        IoReq::Store {
                            surface,
                            z_global,
                            grid,
                            z_lo,
                            z_hi,
                        } => {
                            let _span = stencil_obs::span(stencil_obs::SpanId::OocWriteback);
                            let res = store.write_planes(surface, z_global, &grid, z_lo, z_hi);
                            IoDone::Stored { buf: grid, res }
                        }
                    };
                    if done_tx.send(done).is_err() {
                        break;
                    }
                }
            })
        });

        let issue_load = |pool: &mut WindowPool, tx: &mpsc::Sender<IoReq>, idx: usize| {
            let (_, _, slo, shi) = windows[idx];
            let buf = pool.acquire(shi - slo, ny, nx);
            tx.send(IoReq::Load {
                idx,
                surface: src,
                z0: slo,
                z1: shi,
                buf,
            })
            .expect("io thread alive while requests are issued");
        };

        let mut stores_outstanding = 0usize;
        let mut sync_scratch = Vec::new();
        issue_load(&mut *pool, &req_tx, 0);
        for (k, &(lo, hi, slo, _shi)) in windows.iter().enumerate() {
            // wait for this window's load, recycling store acks that
            // arrive first; a load already in the done queue is a
            // prefetch hit, anything else is a miss timed as a stall
            let mut win = None;
            let mut blocked = false;
            let wait_span = stencil_obs::span(stencil_obs::SpanId::OocLoad);
            let wait_start = Instant::now();
            while win.is_none() {
                let done = match done_rx.try_recv() {
                    Ok(d) => d,
                    Err(mpsc::TryRecvError::Empty) => {
                        blocked = true;
                        done_rx.recv().expect("io thread alive")
                    }
                    Err(mpsc::TryRecvError::Disconnected) => {
                        unreachable!("io thread alive")
                    }
                };
                match done {
                    IoDone::Loaded { idx, mut buf, res } => {
                        debug_assert_eq!(idx, k);
                        if let Err(e) = res {
                            // a transiently failed prefetch degrades to
                            // a synchronous re-read (itself behind the
                            // store's retry loop); anything else is a
                            // hard error
                            if !e.is_transient() {
                                return Err(e);
                            }
                            let (_, _, fslo, fshi) = windows[idx];
                            store.read_window(src, fslo, fshi, &mut buf, &mut sync_scratch)?;
                        }
                        win = Some(buf);
                    }
                    IoDone::Stored { buf, res } => {
                        res?;
                        stores_outstanding -= 1;
                        pool.release(buf);
                    }
                }
            }
            store.note_prefetch(!blocked);
            if blocked {
                store.note_stall(wait_start.elapsed().as_micros() as u64);
                drop(wait_span); // record the stall as a load span
            } else {
                wait_span.cancel(); // hit: nothing blocked, no span
            }
            let win = win.expect("loaded above");
            if k + 1 < windows.len() {
                issue_load(&mut *pool, &req_tx, k + 1);
            }
            let out = {
                let _span = stencil_obs::span(stencil_obs::SpanId::OocCompute);
                plan.run_3d_at(&win, s, slo)?
            };
            pool.release(win);
            req_tx
                .send(IoReq::Store {
                    surface: 1 - src,
                    z_global: lo,
                    grid: out,
                    z_lo: lo - slo,
                    z_hi: hi - slo,
                })
                .expect("io thread alive while requests are issued");
            stores_outstanding += 1;
        }
        // drain the writebacks before the commit syncs the pass
        drop(req_tx);
        while stores_outstanding > 0 {
            match done_rx.recv().expect("io thread drains pending stores") {
                IoDone::Stored { buf, res } => {
                    res?;
                    stores_outstanding -= 1;
                    pool.release(buf);
                }
                IoDone::Loaded { .. } => unreachable!("no loads outstanding at drain"),
            }
        }
        Ok(())
    })
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A collision-free temp path for a transient store.
fn temp_store_path() -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "stencil-ooc-{}-{}.slab",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// Convenience wrapper for resident callers (the serve router, tests,
/// benches): spill `grid` into a transient [`SlabStore`] under the
/// system temp directory, stream `t` steps through it, materialize the
/// result and remove the file — also on error, so transient stores
/// never accumulate.
pub fn run_streaming_grid(
    plan: &Plan,
    grid: &Grid3D,
    t: usize,
    cfg: &OocConfig,
) -> Result<(Grid3D, StreamReport), OocError> {
    let path = temp_store_path();
    let result = run_streaming_grid_at(plan, grid, t, cfg, &path);
    let _ = std::fs::remove_file(&path);
    result
}

/// Resume an interrupted streamed job at `path`: recover the store
/// (rolling a mid-pass crash back to its last committed round — see
/// [`SlabStore::recover`]) and stream however many of `total_steps` the
/// committed round has not yet applied. Because a resumed schedule
/// re-derives exactly the remaining passes of the original schedule,
/// the final surface is bit-identical to an uninterrupted run of
/// `total_steps`. Returns the recovered store (its surface holds the
/// finished domain) and the report of the resumed portion.
pub fn resume_streaming(
    plan: &Plan,
    path: &std::path::Path,
    total_steps: usize,
    cfg: &OocConfig,
) -> Result<(SlabStore, StreamReport), OocError> {
    let store = SlabStore::recover(path)?;
    let done = (store.round().min(total_steps as u64)) as usize;
    let report = run_streaming(plan, &store, total_steps - done, cfg)?;
    Ok((store, report))
}

/// [`run_streaming_grid`] against a caller-chosen store path with
/// resume-on-resubmission semantics: if `path` already holds a store of
/// the same shape and radius — left behind by an earlier attempt that
/// died or errored mid-job — it is recovered and the job resumes from
/// its committed round instead of starting over. On success the file is
/// removed; on error it is **left in place** so a resubmission of the
/// same job can pick up where this attempt stopped. This is the serve
/// layer's crash-recovery route for out-of-core jobs.
pub fn run_streaming_grid_resumable(
    plan: &Plan,
    grid: &Grid3D,
    total_steps: usize,
    cfg: &OocConfig,
    path: &std::path::Path,
) -> Result<(Grid3D, StreamReport), OocError> {
    let radius = plan.pattern().radius();
    let shape = (grid.nz(), grid.ny(), grid.nx());
    let spill = Instant::now();
    let store = match SlabStore::recover(path) {
        Ok(s) if s.shape() == shape && s.radius() == radius && s.round() <= total_steps as u64 => s,
        // no usable leftover (missing, mismatched, or already past the
        // requested round): start fresh
        _ => {
            let _span = stencil_obs::span(stencil_obs::SpanId::OocWriteback);
            SlabStore::create(path, grid, radius)?
        }
    };
    let spill_us = spill.elapsed().as_micros() as u64;
    let done = store.round() as usize;
    let result = (|| {
        let mut report = run_streaming(plan, &store, total_steps - done, cfg)?;
        let gather = Instant::now();
        let out = {
            let _span = stencil_obs::span(stencil_obs::SpanId::OocLoad);
            store.to_grid()?
        };
        report.io_blocked_us += spill_us + gather.elapsed().as_micros() as u64;
        Ok((out, report))
    })();
    if result.is_ok() {
        let _ = std::fs::remove_file(path);
    }
    result
}

/// The internals of [`run_streaming_grid`] against an explicit path:
/// spill, stream, materialize. The caller owns the file's lifetime.
fn run_streaming_grid_at(
    plan: &Plan,
    grid: &Grid3D,
    t: usize,
    cfg: &OocConfig,
    path: &std::path::Path,
) -> Result<(Grid3D, StreamReport), OocError> {
    let spill = Instant::now();
    let store = {
        let _span = stencil_obs::span(stencil_obs::SpanId::OocWriteback);
        SlabStore::create(path, grid, plan.pattern().radius())?
    };
    let spill_us = spill.elapsed().as_micros() as u64;
    let mut report = run_streaming(plan, &store, t, cfg)?;
    let gather = Instant::now();
    let out = {
        let _span = stencil_obs::span(stencil_obs::SpanId::OocLoad);
        store.to_grid()?
    };
    // spilling in and materializing out block the caller regardless
    // of prefetch mode: count them as blocked IO on the report
    report.io_blocked_us += spill_us + gather.elapsed().as_micros() as u64;
    Ok((out, report))
}
