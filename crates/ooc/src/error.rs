//! Typed errors for the out-of-core subsystem.

use stencil_core::PlanError;

/// Everything that can go wrong opening a store or streaming through
/// it.
#[derive(Debug)]
pub enum OocError {
    /// An underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a slab store.
    BadMagic,
    /// The store was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file is shorter than its header promises — an interrupted
    /// create, or external truncation.
    Truncated {
        /// Bytes the header-declared shape requires.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The store's dirty flag is set: a previous run died mid-pass, so
    /// the payload mixes rounds and must not be resumed silently.
    Crashed {
        /// Last committed round (steps fully applied to the clean
        /// surface before the crash).
        round: u64,
    },
    /// The memory budget cannot hold even the minimal streaming window
    /// (smallest legal slab span plus the pingpong/prefetch buffers).
    BudgetTooSmall {
        /// The configured budget in bytes.
        budget: usize,
        /// The smallest workable budget for this plan/domain in bytes.
        needed: usize,
    },
    /// The plan is not eligible for bit-exact slab streaming (see
    /// [`crate::streamable`]).
    UnsupportedPlan {
        /// Why the plan was refused.
        reason: &'static str,
    },
    /// Plan execution failed inside a window.
    Plan(PlanError),
}

impl OocError {
    /// True for failures worth retrying at a higher level: the
    /// OS-level "try again" IO family (including injected failpoint
    /// errors, which are classified the same way). Structural errors —
    /// bad magic, truncation, unsupported plans — are never transient.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store io error: {e}"),
            Self::BadMagic => write!(f, "not a slab store (bad magic)"),
            Self::BadVersion { found } => {
                write!(f, "unsupported slab store version {found}")
            }
            Self::Truncated { expected, found } => write!(
                f,
                "slab store truncated: header promises {expected} bytes, file has {found}"
            ),
            Self::Crashed { round } => write!(
                f,
                "slab store is dirty: a previous run died mid-pass (last committed round {round})"
            ),
            Self::BudgetTooSmall { budget, needed } => write!(
                f,
                "memory budget {budget} B cannot hold the minimal streaming window ({needed} B needed)"
            ),
            Self::UnsupportedPlan { reason } => {
                write!(f, "plan not streamable: {reason}")
            }
            Self::Plan(e) => write!(f, "plan execution failed: {e}"),
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OocError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<PlanError> for OocError {
    fn from(e: PlanError) -> Self {
        Self::Plan(e)
    }
}
