//! # stencil-ooc
//!
//! Out-of-core stencil domains: grids bigger than resident memory,
//! advanced bit-exactly at a bounded memory budget.
//!
//! The paper's kernels remove redundancy *inside* a sweep (folded
//! arithmetic, one-plane-load z-ring); this crate removes it at the
//! next tier out, between DRAM and the file system — the CPU analog of
//! the on-chip-reuse × off-chip-streaming synergy of out-of-core GPU
//! stencils. Two pieces:
//!
//! * [`SlabStore`] — a 3D grid backed by a file: a hand-rolled chunked
//!   little-endian format whose header carries shape, radius, round
//!   and a dirty flag (a crashed run is detected at
//!   [`SlabStore::open`], never silently resumed), and whose payload
//!   is a file-level pingpong of two surfaces so in-place passes can
//!   never clobber halo data.
//! * [`run_streaming`] — the streaming temporal-blocked executor: it
//!   marches halo-widened z-slab windows (the serving sharder's exact
//!   slab arithmetic, shared via [`stencil_core::slab`]) through a
//!   bounded window pool, advancing each window several steps per IO
//!   round trip, with an optional background prefetch thread that
//!   loads window `k + 1` and writes back window `k - 1` while the
//!   pool sweeps window `k`. Pass lengths align to the plan's
//!   composition quantum, so the result is **bit-identical** to the
//!   resident `Plan::run_3d` — verified cell for cell in the parity
//!   suite.
//!
//! ```
//! use stencil_core::{kernels, Method, Solver};
//! use stencil_grid::Grid3D;
//! use stencil_ooc::{run_streaming_grid, OocConfig};
//!
//! let plan = Solver::new(kernels::heat3d())
//!     .method(Method::Folded { m: 2 })
//!     .compile()
//!     .unwrap();
//! let g = Grid3D::from_fn(1024, 16, 16, |z, y, x| ((z + y + x) % 9) as f64);
//! let resident = plan.run_3d(&g, 6).unwrap();
//! // stream the same run through a file-backed store with a window
//! // budget of a quarter of the domain
//! let cfg = OocConfig {
//!     budget_bytes: 256 * 16 * 16 * 8,
//!     ..OocConfig::default()
//! };
//! let (streamed, report) = run_streaming_grid(&plan, &g, 6, &cfg).unwrap();
//! assert_eq!(resident.to_dense(), streamed.to_dense()); // bit-exact
//! assert!(report.passes >= 1 && report.resident_bytes <= cfg.budget_bytes);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod store;
pub mod stream;

pub use error::OocError;
pub use store::{SlabStore, StoreStats, IO_RETRY_BASE_US, IO_RETRY_MAX, MAGIC, VERSION};
pub use stream::{
    resume_streaming, run_streaming, run_streaming_grid, run_streaming_grid_resumable, streamable,
    OocConfig, StreamReport, RESIDENT_WINDOWS_PREFETCH, RESIDENT_WINDOWS_SYNC,
};
