//! The file-backed slab store.
//!
//! ## On-disk format (version 1)
//!
//! A hand-rolled chunked binary layout, everything little-endian:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "STNCLOOC"
//!      8     4  version (u32, = 1)
//!     12     4  dirty   (u32, 0 clean / 1 mid-pass)
//!     16     8  nz      (u64)
//!     24     8  ny      (u64)
//!     32     8  nx      (u64)
//!     40     8  radius  (u64, stencil radius of the producing plan)
//!     48     8  round   (u64, time steps fully applied to `surface`)
//!     56     8  surface (u64, 0 or 1: which payload copy is current)
//!     64     —  payload: two surfaces, each nz plane chunks of
//!               ny*nx raw f64 (unpadded, row-major within a plane)
//! ```
//!
//! The payload is a file-level pingpong: a streaming pass reads slab
//! windows from the current surface and writes advanced interiors to
//! the other, so a window write can never clobber halo planes a later
//! window still needs to read. [`SlabStore::commit_pass`] flips the
//! surface and advances `round` only after the data is synced.
//!
//! The `dirty` flag brackets every pass: it is raised (and synced)
//! before the first write of a pass and cleared by the commit. A
//! process that dies mid-pass leaves it set, and [`SlabStore::open`]
//! reports the store as [`OocError::Crashed`] with the last committed
//! round instead of silently resuming mixed-round data —
//! [`SlabStore::recover`] rolls such a store back to that committed
//! round (the interrupted pass only ever wrote the other surface, so
//! the rollback is metadata-only) and the job can resume. Truncation is
//! caught by checking the file length against the header shape.
//!
//! Every read, write and fsync runs behind a bounded retry loop with
//! exponential backoff ([`IO_RETRY_MAX`], [`IO_RETRY_BASE_US`]):
//! transient-classified `io::ErrorKind`s are absorbed (counted in
//! [`StoreStats::io_retries`]) instead of aborting a multi-minute
//! streamed job, and the `ooc_read` / `ooc_write` / `ooc_fsync`
//! failpoints (`stencil-faults`) inject into exactly that path.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use stencil_faults::Failpoint;
use stencil_grid::Grid3D;

use crate::error::OocError;

/// First 8 bytes of every slab store.
pub const MAGIC: [u8; 8] = *b"STNCLOOC";
/// Current format version.
pub const VERSION: u32 = 1;
const HEADER_LEN: u64 = 64;

/// Most transient-failure retries per IO operation before the error is
/// surfaced to the caller.
pub const IO_RETRY_MAX: u32 = 4;
/// First backoff sleep; doubles on every further retry of the same
/// operation (50, 100, 200, 400 us).
pub const IO_RETRY_BASE_US: u64 = 50;

/// IO error kinds worth retrying: the OS-level "try again" family. Real
/// data errors (truncation, permission, corruption) surface immediately.
fn transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Cumulative IO counters of a [`SlabStore`], snapshotted by
/// [`SlabStore::stats`].
///
/// `bytes_read` / `bytes_written` are deterministic functions of the
/// streaming geometry (domain, budget, pass schedule); the prefetch
/// hit/miss split and the stall time depend on IO/compute timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Payload bytes read from the file.
    pub bytes_read: u64,
    /// Payload bytes written to the file.
    pub bytes_written: u64,
    /// Window loads that were already resident when the sweep asked.
    pub prefetch_hit: u64,
    /// Window loads the sweep had to wait for.
    pub prefetch_miss: u64,
    /// Microseconds the sweep spent stalled on IO.
    pub stall_us: u64,
    /// Microseconds spent inside window reads/writes (wall time of the
    /// transfer + codec, on whichever thread issued them). Under
    /// prefetch this exceeds `stall_us` — the difference is IO the
    /// pipeline hid under compute.
    pub io_us: u64,
    /// Transient IO failures absorbed by the bounded retry/backoff
    /// loop (each count is one re-attempt of a read, write or fsync).
    pub io_retries: u64,
}

#[derive(Default)]
struct StatsCell {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    prefetch_hit: AtomicU64,
    prefetch_miss: AtomicU64,
    stall_us: AtomicU64,
    io_us: AtomicU64,
    io_retries: AtomicU64,
}

/// A 3D grid backed by a file instead of resident memory.
///
/// Windows move through [`read_window`](Self::read_window) /
/// [`write_planes`](Self::write_planes), both `&self` (positioned
/// pread/pwrite — no shared cursor), so a background IO thread and the
/// sweep thread can use one store concurrently.
pub struct SlabStore {
    file: File,
    path: PathBuf,
    nz: usize,
    ny: usize,
    nx: usize,
    radius: usize,
    round: AtomicU64,
    surface: AtomicU64,
    stats: StatsCell,
}

impl SlabStore {
    /// Create a store at `path` holding `grid` as round-0 data of
    /// surface 0. An existing file is truncated.
    pub fn create(path: &Path, grid: &Grid3D, radius: usize) -> Result<Self, OocError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let store = Self {
            file,
            path: path.to_path_buf(),
            nz: grid.nz(),
            ny: grid.ny(),
            nx: grid.nx(),
            radius,
            round: AtomicU64::new(0),
            surface: AtomicU64::new(0),
            stats: StatsCell::default(),
        };
        store.file.set_len(HEADER_LEN + 2 * store.surface_bytes())?;
        store.write_header(false)?;
        let written = store.stats.bytes_written.load(Ordering::Relaxed);
        let io = store.stats.io_us.load(Ordering::Relaxed);
        store.write_planes(0, 0, grid, 0, grid.nz())?;
        // seeding the store is not streaming traffic
        store.stats.bytes_written.store(written, Ordering::Relaxed);
        store.stats.io_us.store(io, Ordering::Relaxed);
        store.sync_payload()?;
        Ok(store)
    }

    /// Open an existing store, validating magic, version, shape-implied
    /// length and the crash flag.
    pub fn open(path: &Path) -> Result<Self, OocError> {
        Self::open_impl(path, false)
    }

    /// Open a store, rolling it back to its last committed surface and
    /// round if a crash left it dirty mid-pass.
    ///
    /// Recovery is metadata-only: the file-level ping-pong guarantees an
    /// interrupted pass only ever wrote to the *non-committed* surface,
    /// so the committed payload is intact and clearing the dirty flag
    /// (synced) is sufficient. A clean store opens unchanged, so this
    /// is safe to use as the default open for resumable jobs.
    pub fn recover(path: &Path) -> Result<Self, OocError> {
        let store = Self::open_impl(path, true)?;
        store.write_header(false)?;
        store.sync_payload()?;
        Ok(store)
    }

    fn open_impl(path: &Path, allow_dirty: bool) -> Result<Self, OocError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut head = [0u8; HEADER_LEN as usize];
        let found = file.metadata()?.len();
        if found < HEADER_LEN {
            return Err(OocError::Truncated {
                expected: HEADER_LEN,
                found,
            });
        }
        file.read_exact_at(&mut head, 0)?;
        if head[..8] != MAGIC {
            return Err(OocError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes(head[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(head[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != VERSION {
            return Err(OocError::BadVersion { found: version });
        }
        let store = Self {
            file,
            path: path.to_path_buf(),
            nz: u64_at(16) as usize,
            ny: u64_at(24) as usize,
            nx: u64_at(32) as usize,
            radius: u64_at(40) as usize,
            round: AtomicU64::new(u64_at(48)),
            surface: AtomicU64::new(u64_at(56)),
            stats: StatsCell::default(),
        };
        let expected = HEADER_LEN + 2 * store.surface_bytes();
        if found < expected {
            return Err(OocError::Truncated { expected, found });
        }
        if u32_at(12) != 0 && !allow_dirty {
            return Err(OocError::Crashed {
                round: store.round.load(Ordering::Relaxed),
            });
        }
        Ok(store)
    }

    /// Run `op` with bounded retry and exponential backoff on
    /// transient-classified errors; failpoint `fp` is consulted before
    /// every attempt, so injected faults exercise the identical retry
    /// path a real transient fault would.
    fn retry_io(
        &self,
        fp: Failpoint,
        mut op: impl FnMut() -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        let mut delay_us = IO_RETRY_BASE_US;
        let mut attempts = 0u32;
        loop {
            let r = if stencil_faults::should_fire(fp) {
                Err(stencil_faults::injected_io_error(fp))
            } else {
                op()
            };
            match r {
                Ok(()) => return Ok(()),
                Err(e) if transient(e.kind()) && attempts < IO_RETRY_MAX => {
                    attempts += 1;
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(delay_us));
                    delay_us = delay_us.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `sync_data` behind the retry/backoff loop and the `ooc_fsync`
    /// failpoint.
    fn sync_payload(&self) -> Result<(), OocError> {
        self.retry_io(Failpoint::OocFsync, || self.file.sync_data())?;
        Ok(())
    }

    /// Domain shape `(nz, ny, nx)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nz, self.ny, self.nx)
    }

    /// Stencil radius recorded at creation.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Time steps fully applied to the current surface.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Which payload surface (0/1) holds the current data.
    pub fn surface(&self) -> u64 {
        self.surface.load(Ordering::Relaxed)
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Unpadded bytes of one z plane in the file.
    pub fn plane_file_bytes(&self) -> usize {
        self.ny * self.nx * 8
    }

    fn surface_bytes(&self) -> u64 {
        self.nz as u64 * self.plane_file_bytes() as u64
    }

    fn offset(&self, surface: u64, z: usize) -> u64 {
        debug_assert!(surface < 2 && z <= self.nz);
        HEADER_LEN + surface * self.surface_bytes() + (z * self.plane_file_bytes()) as u64
    }

    fn write_header(&self, dirty: bool) -> Result<(), OocError> {
        let mut head = [0u8; HEADER_LEN as usize];
        head[..8].copy_from_slice(&MAGIC);
        head[8..12].copy_from_slice(&VERSION.to_le_bytes());
        head[12..16].copy_from_slice(&u32::from(dirty).to_le_bytes());
        for (o, v) in [
            (16, self.nz as u64),
            (24, self.ny as u64),
            (32, self.nx as u64),
            (40, self.radius as u64),
            (48, self.round.load(Ordering::Relaxed)),
            (56, self.surface.load(Ordering::Relaxed)),
        ] {
            head[o..o + 8].copy_from_slice(&v.to_le_bytes());
        }
        self.retry_io(Failpoint::OocWrite, || self.file.write_all_at(&head, 0))?;
        Ok(())
    }

    /// Read planes `[z0, z1)` of `surface` into `out`, which must be a
    /// `(z1 - z0) x ny x nx` grid. `scratch` is reused across calls to
    /// avoid re-allocating the transfer buffer.
    pub fn read_window(
        &self,
        surface: u64,
        z0: usize,
        z1: usize,
        out: &mut Grid3D,
        scratch: &mut Vec<u8>,
    ) -> Result<(), OocError> {
        assert!(z0 <= z1 && z1 <= self.nz, "window out of range");
        assert_eq!(
            (out.nz(), out.ny(), out.nx()),
            (z1 - z0, self.ny, self.nx),
            "window grid shape mismatch"
        );
        let t0 = std::time::Instant::now();
        let pb = self.plane_file_bytes();
        scratch.clear();
        scratch.resize((z1 - z0) * pb, 0);
        let offset = self.offset(surface, z0);
        self.retry_io(Failpoint::OocRead, || {
            self.file.read_exact_at(scratch, offset)
        })?;
        for z in 0..z1 - z0 {
            for y in 0..self.ny {
                let src = &scratch[z * pb + y * self.nx * 8..][..self.nx * 8];
                bytes_to_f64(src, out.row_mut(z, y));
            }
        }
        self.stats
            .bytes_read
            .fetch_add(scratch.len() as u64, Ordering::Relaxed);
        self.note_io(t0.elapsed());
        Ok(())
    }

    /// Write local planes `[z_lo, z_hi)` of `grid` to `surface`,
    /// landing at global plane `z_global + (z - z_lo)`.
    pub fn write_planes(
        &self,
        surface: u64,
        z_global: usize,
        grid: &Grid3D,
        z_lo: usize,
        z_hi: usize,
    ) -> Result<(), OocError> {
        assert!(
            z_lo <= z_hi && z_hi <= grid.nz(),
            "plane range out of range"
        );
        assert!(z_global + (z_hi - z_lo) <= self.nz, "write past the domain");
        assert_eq!((grid.ny(), grid.nx()), (self.ny, self.nx), "shape mismatch");
        let t0 = std::time::Instant::now();
        let pb = self.plane_file_bytes();
        let mut buf = vec![0u8; (z_hi - z_lo) * pb];
        for z in z_lo..z_hi {
            for y in 0..self.ny {
                let dst = &mut buf[(z - z_lo) * pb + y * self.nx * 8..][..self.nx * 8];
                f64_to_bytes(grid.row(z, y), dst);
            }
        }
        let offset = self.offset(surface, z_global);
        self.retry_io(Failpoint::OocWrite, || self.file.write_all_at(&buf, offset))?;
        self.stats
            .bytes_written
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.note_io(t0.elapsed());
        Ok(())
    }

    /// Mark the store dirty ahead of a pass's first payload write. The
    /// flag is synced so a crash at any later point is detectable.
    pub fn begin_pass(&self) -> Result<(), OocError> {
        self.write_header(true)?;
        self.sync_payload()
    }

    /// Conclude a pass that advanced the *other* surface by `steps`:
    /// sync the payload, flip the current surface, bump the round and
    /// clear the dirty flag. If the process dies before the final
    /// header write lands, the old header still says dirty — the store
    /// stays crash-detectable, never silently wrong.
    pub fn commit_pass(&self, steps: u64) -> Result<(), OocError> {
        self.sync_payload()?;
        self.surface.fetch_xor(1, Ordering::Relaxed);
        self.round.fetch_add(steps, Ordering::Relaxed);
        self.write_header(false)?;
        Ok(())
    }

    /// Materialize the whole current surface as a resident grid.
    pub fn to_grid(&self) -> Result<Grid3D, OocError> {
        let mut g = Grid3D::zeros(self.nz, self.ny, self.nx);
        let read = self.stats.bytes_read.load(Ordering::Relaxed);
        let io = self.stats.io_us.load(Ordering::Relaxed);
        let mut scratch = Vec::new();
        self.read_window(self.surface(), 0, self.nz, &mut g, &mut scratch)?;
        // materialization is not streaming traffic
        self.stats.bytes_read.store(read, Ordering::Relaxed);
        self.stats.io_us.store(io, Ordering::Relaxed);
        Ok(g)
    }

    /// Snapshot the cumulative IO counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
            prefetch_hit: self.stats.prefetch_hit.load(Ordering::Relaxed),
            prefetch_miss: self.stats.prefetch_miss.load(Ordering::Relaxed),
            stall_us: self.stats.stall_us.load(Ordering::Relaxed),
            io_us: self.stats.io_us.load(Ordering::Relaxed),
            io_retries: self.stats.io_retries.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_prefetch(&self, hit: bool) {
        let c = if hit {
            &self.stats.prefetch_hit
        } else {
            &self.stats.prefetch_miss
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_stall(&self, us: u64) {
        self.stats.stall_us.fetch_add(us, Ordering::Relaxed);
    }

    fn note_io(&self, d: std::time::Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.stats.io_us.fetch_add(us, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SlabStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SlabStore({}x{}x{} r{} round={} surface={} at {})",
            self.nz,
            self.ny,
            self.nx,
            self.radius,
            self.round(),
            self.surface(),
            self.path.display()
        )
    }
}

fn bytes_to_f64(src: &[u8], dst: &mut [f64]) {
    debug_assert_eq!(src.len(), dst.len() * 8);
    #[cfg(target_endian = "little")]
    // SAFETY: dst is valid for dst.len() * 8 bytes and f64 accepts any
    // bit pattern; the file format is little-endian, like the host.
    unsafe {
        core::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr().cast::<u8>(), src.len());
    }
    #[cfg(target_endian = "big")]
    for (i, v) in dst.iter_mut().enumerate() {
        *v = f64::from_le_bytes(src[i * 8..i * 8 + 8].try_into().unwrap());
    }
}

fn f64_to_bytes(src: &[f64], dst: &mut [u8]) {
    debug_assert_eq!(src.len() * 8, dst.len());
    #[cfg(target_endian = "little")]
    // SAFETY: src is valid for src.len() * 8 bytes; plain byte copy.
    unsafe {
        core::ptr::copy_nonoverlapping(src.as_ptr().cast::<u8>(), dst.as_mut_ptr(), dst.len());
    }
    #[cfg(target_endian = "big")]
    for (i, v) in src.iter().enumerate() {
        dst[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "stencil-ooc-test-{}-{name}.slab",
            std::process::id()
        ));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn roundtrip_create_open_to_grid() {
        let path = tmp("roundtrip");
        let _c = Cleanup(path.clone());
        let g = Grid3D::from_fn(7, 5, 11, |z, y, x| (z * 100 + y * 16 + x) as f64 * 0.25);
        let store = SlabStore::create(&path, &g, 2).unwrap();
        assert_eq!(store.shape(), (7, 5, 11));
        assert_eq!(store.round(), 0);
        drop(store);
        let store = SlabStore::open(&path).unwrap();
        assert_eq!(store.radius(), 2);
        let back = store.to_grid().unwrap();
        assert_eq!(g.to_dense(), back.to_dense());
    }

    #[test]
    fn windows_scatter_and_gather_with_padding() {
        let path = tmp("windows");
        let _c = Cleanup(path.clone());
        // nx = 11 forces padded rows in Grid3D but unpadded file planes
        let g = Grid3D::from_fn(9, 4, 11, |z, y, x| (z * 67 + y * 13 + x) as f64);
        let store = SlabStore::create(&path, &g, 1).unwrap();
        let mut win = Grid3D::zeros(4, 4, 11);
        let mut scratch = Vec::new();
        store.read_window(0, 3, 7, &mut win, &mut scratch).unwrap();
        for z in 0..4 {
            for y in 0..4 {
                assert_eq!(win.row(z, y), g.row(z + 3, y), "z={z} y={y}");
            }
        }
        // write two interior planes of the window to the other surface
        store.write_planes(1, 4, &win, 1, 3).unwrap();
        let mut out = Grid3D::zeros(2, 4, 11);
        store.read_window(1, 4, 6, &mut out, &mut scratch).unwrap();
        for z in 0..2 {
            for y in 0..4 {
                assert_eq!(out.row(z, y), g.row(z + 4, y));
            }
        }
        let s = store.stats();
        assert_eq!(
            s.bytes_read,
            (4 + 2) as u64 * store.plane_file_bytes() as u64
        );
        assert_eq!(s.bytes_written, 2 * store.plane_file_bytes() as u64);
    }

    #[test]
    fn commit_flips_surface_and_advances_round() {
        let path = tmp("commit");
        let _c = Cleanup(path.clone());
        let g = Grid3D::zeros(4, 3, 3);
        let store = SlabStore::create(&path, &g, 1).unwrap();
        store.begin_pass().unwrap();
        store.write_planes(1, 0, &g, 0, 4).unwrap();
        store.commit_pass(6).unwrap();
        assert_eq!((store.round(), store.surface()), (6, 1));
        drop(store);
        let store = SlabStore::open(&path).unwrap();
        assert_eq!((store.round(), store.surface()), (6, 1));
    }

    #[test]
    fn open_detects_bad_magic_version_truncation_and_crash() {
        let g = Grid3D::zeros(4, 3, 3);

        let path = tmp("magic");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, b"definitely not a slab store").unwrap();
        assert!(matches!(
            SlabStore::open(&path),
            Err(OocError::Truncated { .. })
        ));
        let mut junk = vec![0u8; 200];
        junk[..8].copy_from_slice(b"NOTSTNCL");
        std::fs::write(&path, &junk).unwrap();
        assert!(matches!(SlabStore::open(&path), Err(OocError::BadMagic)));

        let path = tmp("version");
        let _c = Cleanup(path.clone());
        SlabStore::create(&path, &g, 1).unwrap();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all_at(&99u32.to_le_bytes(), 8).unwrap();
        assert!(matches!(
            SlabStore::open(&path),
            Err(OocError::BadVersion { found: 99 })
        ));

        let path = tmp("trunc");
        let _c = Cleanup(path.clone());
        SlabStore::create(&path, &g, 1).unwrap();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(100).unwrap();
        drop(f);
        match SlabStore::open(&path) {
            Err(OocError::Truncated { expected, found }) => {
                assert_eq!(found, 100);
                assert!(expected > 100);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }

        let path = tmp("crash");
        let _c = Cleanup(path.clone());
        let store = SlabStore::create(&path, &g, 1).unwrap();
        store.begin_pass().unwrap();
        drop(store); // died mid-pass: commit never ran
        assert!(matches!(
            SlabStore::open(&path),
            Err(OocError::Crashed { round: 0 })
        ));
    }

    #[test]
    fn recover_rolls_a_dirty_store_back_to_the_committed_round() {
        let path = tmp("recover");
        let _c = Cleanup(path.clone());
        let g = Grid3D::from_fn(5, 4, 6, |z, y, x| (z * 31 + y * 7 + x) as f64);
        let store = SlabStore::create(&path, &g, 1).unwrap();
        // one committed pass so the recovery target is non-trivial
        store.begin_pass().unwrap();
        store.write_planes(1, 0, &g, 0, 5).unwrap();
        store.commit_pass(3).unwrap();
        // a second pass dies after scribbling on the non-committed surface
        store.begin_pass().unwrap();
        let junk = Grid3D::from_fn(5, 4, 6, |_, _, _| -1.0);
        store.write_planes(0, 0, &junk, 0, 5).unwrap();
        drop(store);
        assert!(matches!(
            SlabStore::open(&path),
            Err(OocError::Crashed { round: 3 })
        ));
        let store = SlabStore::recover(&path).unwrap();
        assert_eq!((store.round(), store.surface()), (3, 1));
        assert_eq!(store.to_grid().unwrap().to_dense(), g.to_dense());
        drop(store);
        // recovery persisted: a plain open succeeds and agrees
        let store = SlabStore::open(&path).unwrap();
        assert_eq!((store.round(), store.surface()), (3, 1));
        // recover on a clean store is an identity open
        drop(store);
        let store = SlabStore::recover(&path).unwrap();
        assert_eq!(store.to_grid().unwrap().to_dense(), g.to_dense());
    }
}
