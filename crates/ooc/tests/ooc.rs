//! Out-of-core parity suite: the streaming executor must reproduce the
//! resident `Plan::run_3d` **bit for bit** across kernels (star and
//! box), effective radii 1/2/4, fold factors m ∈ {1, 2, 3}, both
//! tilings, tail steps, window sizes down to the minimum, and with the
//! prefetch thread disabled — plus the store's crash/truncation
//! detection and the budget error path.

use stencil_core::{kernels, Method, Pattern, Plan, Solver, Tiling};
use stencil_grid::Grid3D;
use stencil_ooc::{run_streaming, run_streaming_grid, OocConfig, OocError, SlabStore};

fn bits(g: &Grid3D) -> Vec<u64> {
    g.to_dense().iter().map(|v| v.to_bits()).collect()
}

fn workload(nz: usize, ny: usize, nx: usize) -> Grid3D {
    Grid3D::from_fn(nz, ny, nx, |z, y, x| {
        ((z * 37 + y * 11 + x * 5) % 23) as f64 * 0.25 - 2.0
    })
}

/// Budget that caps windows at roughly `planes` resident planes.
fn budget_for(ny: usize, nx: usize, planes: usize, prefetch: bool) -> usize {
    let plane = Grid3D::zeros(1, ny, nx).stride_z() * 8;
    let residency = if prefetch {
        stencil_ooc::RESIDENT_WINDOWS_PREFETCH
    } else {
        stencil_ooc::RESIDENT_WINDOWS_SYNC
    };
    planes * plane * residency
}

fn check(plan: &Plan, g: &Grid3D, t: usize, cfg: &OocConfig) {
    let want = plan.run_3d(g, t).unwrap();
    let (got, report) = run_streaming_grid(plan, g, t, cfg).unwrap();
    assert_eq!(bits(&want), bits(&got), "streamed run diverged");
    assert!(report.passes >= 1);
    assert!(
        report.resident_bytes <= cfg.budget_bytes,
        "accounted residency {} exceeds budget {}",
        report.resident_bytes,
        cfg.budget_bytes
    );
    assert!(report.stats.bytes_read > 0 && report.stats.bytes_written > 0);
}

#[test]
fn parity_across_kernels_radii_and_fold_factors() {
    // (kernel, method, tiling, t): effective radii 1 (heat3d m=1),
    // 2 (folded r1, plain r2), 3 (m=3) and 4 (folded r2) — stars and
    // boxes, block-free and tessellate, even and tail step counts
    let cases: Vec<(Pattern, Method, Tiling, usize)> = vec![
        (kernels::heat3d(), Method::MultipleLoads, Tiling::None, 5),
        (kernels::heat3d(), Method::Folded { m: 2 }, Tiling::None, 7),
        (kernels::heat3d(), Method::Folded { m: 3 }, Tiling::None, 8),
        (
            kernels::box3d27p(),
            Method::Folded { m: 2 },
            Tiling::Tessellate { time_block: 2 },
            5,
        ),
        (kernels::star3d_r2(), Method::Scalar, Tiling::None, 3),
        (
            kernels::star3d_r2(),
            Method::Folded { m: 2 },
            Tiling::None,
            6,
        ),
        (
            kernels::box3d125p(),
            Method::Folded { m: 2 },
            Tiling::Tessellate { time_block: 2 },
            4,
        ),
        (
            kernels::box3d125p(),
            Method::MultipleLoads,
            Tiling::Tessellate { time_block: 3 },
            5,
        ),
    ];
    let g = workload(72, 16, 16);
    for (pattern, method, tiling, t) in cases {
        let label = format!("{method:?}/{tiling:?} t={t}");
        let plan = Solver::new(pattern)
            .method(method)
            .tiling(tiling)
            .compile()
            .unwrap();
        assert!(stencil_ooc::streamable(&plan), "{label}");
        // a cap well below the domain forces several windows/passes
        // (48 planes also clears the deepest case here: the folded
        // 125-point stencil needs 41-plane windows at its shallowest
        // pass)
        let cfg = OocConfig {
            budget_bytes: budget_for(16, 16, 48, true),
            ..OocConfig::default()
        };
        check(&plan, &g, t, &cfg);
    }
}

#[test]
fn parity_with_prefetch_disabled_and_multi_pass_schedules() {
    let g = workload(64, 14, 18);
    let plan = Solver::new(kernels::heat3d())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap();
    let t = 9; // 4 macro-steps + 1 tail step
    let want = plan.run_3d(&g, t).unwrap();
    for prefetch in [true, false] {
        for steps_per_pass in [0, 2, 4] {
            let cfg = OocConfig {
                budget_bytes: budget_for(14, 18, 34, prefetch),
                steps_per_pass,
                prefetch,
            };
            let (got, report) = run_streaming_grid(&plan, &g, t, &cfg).unwrap();
            assert_eq!(
                bits(&want),
                bits(&got),
                "prefetch={prefetch} steps_per_pass={steps_per_pass}"
            );
            if steps_per_pass == 2 {
                assert!(report.passes >= 4, "shallow passes must be honored");
            }
            if !prefetch {
                // the synchronous path never touches the prefetch
                // counters — the fallback is a plain load/sweep/store
                assert_eq!(report.stats.prefetch_hit + report.stats.prefetch_miss, 0);
                assert_eq!(report.stats.stall_us, 0);
            } else {
                // one load per window per pass (the final, shallower
                // pass may lay out a different window count)
                assert!(
                    report.stats.prefetch_hit + report.stats.prefetch_miss >= report.passes as u64
                );
            }
        }
    }
}

#[test]
fn parity_at_the_minimum_window_and_budget_error_below_it() {
    let g = workload(48, 12, 12);
    let plan = Solver::new(kernels::heat3d())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 2 })
        .compile()
        .unwrap();
    let t = 6;
    // a 1-byte budget cannot hold anything; the error names the
    // smallest budget that works
    let tiny = OocConfig {
        budget_bytes: 1,
        ..OocConfig::default()
    };
    let needed = match run_streaming_grid(&plan, &g, t, &tiny) {
        Err(OocError::BudgetTooSmall { budget: 1, needed }) => needed,
        other => panic!("expected BudgetTooSmall, got {other:?}"),
    };
    // the reported budget is sufficient (it includes worst-case
    // alignment slack): runs, and stays bit-exact
    let min_cfg = OocConfig {
        budget_bytes: needed,
        ..OocConfig::default()
    };
    check(&plan, &g, t, &min_cfg);
    // probe down one cap plane at a time to the true minimum window:
    // every budget that runs must stay bit-exact, and the walk must
    // terminate in BudgetTooSmall, not in divergence
    let step = Grid3D::zeros(1, 12, 12).stride_z() * 8 * stencil_ooc::RESIDENT_WINDOWS_PREFETCH;
    let mut budget = needed;
    let mut ran = 0;
    loop {
        budget -= step;
        let cfg = OocConfig {
            budget_bytes: budget,
            ..OocConfig::default()
        };
        match run_streaming_grid(&plan, &g, t, &cfg) {
            Ok((got, _)) => {
                ran += 1;
                assert_eq!(
                    bits(&plan.run_3d(&g, t).unwrap()),
                    bits(&got),
                    "budget={budget}"
                );
            }
            Err(OocError::BudgetTooSmall { .. }) => break,
            Err(other) => panic!("unexpected error at budget {budget}: {other:?}"),
        }
        assert!(ran < 64, "walk did not reach the minimum");
    }
}

#[test]
fn streaming_resumes_across_calls_on_one_store() {
    // two streaming calls on the same store compose like one resident
    // run of the summed steps (the pass schedule already aligns to the
    // plan's quantum)
    let mut path = std::env::temp_dir();
    path.push(format!("stencil-ooc-resume-{}.slab", std::process::id()));
    let g = workload(56, 16, 12);
    let plan = Solver::new(kernels::box3d27p())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap();
    let cfg = OocConfig {
        budget_bytes: budget_for(16, 12, 30, true),
        ..OocConfig::default()
    };
    let want = plan.run_3d(&g, 10).unwrap();
    let store = SlabStore::create(&path, &g, plan.pattern().radius()).unwrap();
    run_streaming(&plan, &store, 4, &cfg).unwrap();
    assert_eq!(store.round(), 4);
    run_streaming(&plan, &store, 6, &cfg).unwrap();
    assert_eq!(store.round(), 10);
    let got = store.to_grid().unwrap();
    drop(store);
    std::fs::remove_file(&path).unwrap();
    assert_eq!(bits(&want), bits(&got));
}

#[test]
fn truncated_and_crashed_stores_are_detected() {
    let g = workload(10, 8, 8);
    let mut path = std::env::temp_dir();
    path.push(format!("stencil-ooc-crashdet-{}.slab", std::process::id()));

    // external truncation (an interrupted copy, a full disk)
    SlabStore::create(&path, &g, 1).unwrap();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(200).unwrap();
    drop(f);
    assert!(matches!(
        SlabStore::open(&path),
        Err(OocError::Truncated { found: 200, .. })
    ));

    // a run that died mid-pass leaves the dirty flag set
    let store = SlabStore::create(&path, &g, 1).unwrap();
    store.begin_pass().unwrap();
    drop(store);
    match SlabStore::open(&path) {
        Err(OocError::Crashed { round: 0 }) => {}
        other => panic!("expected Crashed, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn unsupported_plans_are_refused_not_wrong() {
    // DLT transforms the whole array — not slab-streamable
    let plan = Solver::new(kernels::heat3d())
        .method(Method::Dlt)
        .tiling(Tiling::Split { time_block: 2 })
        .compile()
        .unwrap();
    assert!(!stencil_ooc::streamable(&plan));
    let g = workload(24, 10, 10);
    assert!(matches!(
        run_streaming_grid(&plan, &g, 2, &OocConfig::default()),
        Err(OocError::UnsupportedPlan { .. })
    ));
}

#[test]
fn transient_stores_are_cleaned_up() {
    // run_streaming_grid must leave no .slab files behind, on success
    // and on failure
    let count = || {
        std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name();
                let n = n.to_string_lossy().into_owned();
                n.starts_with(&format!("stencil-ooc-{}-", std::process::id()))
            })
            .count()
    };
    let before = count();
    let g = workload(48, 10, 10);
    let plan = Solver::new(kernels::heat3d())
        .method(Method::Folded { m: 2 })
        .compile()
        .unwrap();
    let cfg = OocConfig {
        budget_bytes: budget_for(10, 10, 28, true),
        ..OocConfig::default()
    };
    run_streaming_grid(&plan, &g, 4, &cfg).unwrap();
    let tiny = OocConfig {
        budget_bytes: 1,
        ..OocConfig::default()
    };
    let _ = run_streaming_grid(&plan, &g, 4, &tiny);
    assert_eq!(count(), before, "transient store files leaked");
}
