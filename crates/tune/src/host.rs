//! Host fingerprinting for the per-host plan cache and the benchmark
//! dumps: a tuned choice is only trustworthy on the machine (and ISA
//! build) that measured it, so every cache key and every committed
//! baseline carries this fingerprint.

use stencil_core::Width;

/// The identity a tuning measurement is keyed by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Machine hostname (the best of `$HOSTNAME`,
    /// `/proc/sys/kernel/hostname`, `/etc/hostname`, or `"unknown-host"`).
    pub hostname: String,
    /// The vector ISA this *build* can use — static feature detection,
    /// so an AVX-512 binary and a portable binary on the same machine
    /// fingerprint differently, as they must: their plan spaces differ.
    pub isa: String,
    /// Hardware threads the runtime sees.
    pub threads: usize,
}

impl HostFingerprint {
    /// Fingerprint the current host and build.
    pub fn detect() -> Self {
        Self {
            hostname: detect_hostname(),
            isa: isa_string(),
            threads: stencil_runtime::available_parallelism(),
        }
    }

    /// The `hostname|isa` prefix every cache key starts with (thread
    /// count is part of the per-entry key instead, since one host can
    /// legitimately tune for several pool sizes).
    pub fn key_prefix(&self) -> String {
        format!("{}|{}", self.hostname, self.isa)
    }
}

/// The static-feature ISA label, including the widest native width so
/// a `Width::native_max()` change shows up in the fingerprint.
pub fn isa_string() -> String {
    let features = if stencil_simd::HAS_AVX512 {
        "avx512f"
    } else if stencil_simd::HAS_AVX2 {
        "avx2"
    } else {
        "portable"
    };
    format!("{}-w{}", features, Width::native_max().lanes())
}

fn detect_hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        let h = h.trim().to_string();
        if !h.is_empty() {
            return h;
        }
    }
    for path in ["/proc/sys/kernel/hostname", "/etc/hostname"] {
        if let Ok(h) = std::fs::read_to_string(path) {
            let h = h.trim().to_string();
            if !h.is_empty() {
                return h;
            }
        }
    }
    "unknown-host".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_nonempty_and_stable() {
        let a = HostFingerprint::detect();
        let b = HostFingerprint::detect();
        assert_eq!(a, b);
        assert!(!a.hostname.is_empty());
        assert!(a.isa.contains("-w"));
        assert!(a.threads >= 1);
        assert!(a.key_prefix().contains('|'));
    }

    #[test]
    fn isa_tracks_the_build_features() {
        let isa = isa_string();
        if stencil_simd::HAS_AVX512 {
            assert!(isa.starts_with("avx512f"));
        } else if stencil_simd::HAS_AVX2 {
            assert!(isa.starts_with("avx2"));
        } else {
            assert!(isa.starts_with("portable"));
        }
    }
}
