//! Minimal JSON reader/writer for the tuning cache.
//!
//! The build environment is offline, so — like
//! `stencil-bench`'s hand-rolled report writer — this module implements
//! the small JSON subset the cache file needs instead of pulling in
//! `serde_json`: objects, arrays, strings with the RFC 8259 escapes,
//! finite numbers, booleans and null. The parser is a plain
//! recursive-descent over bytes; cache files are kilobytes, so clarity
//! beats throughput here.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`; the cache stores
    /// nothing that needs more than 53 bits).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object. `BTreeMap` keeps serialization deterministic, which
    /// makes cache files diffable and the round-trip test exact.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A field of this object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(a) if a.is_empty() => out.push_str("[]"),
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write(out, depth + 1);
                }
                let _ = write!(out, "\n{}]", "  ".repeat(depth));
            }
            Value::Obj(m) if m.is_empty() => out.push_str("{}"),
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                let _ = write!(out, "\n{}}}", "  ".repeat(depth));
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // a decimal point keeps the value a float on re-parse
        let _ = write!(out, "{n:.1}");
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Why parsing failed: byte offset plus a static description — enough
/// to decide "this cache file is corrupt, start fresh" and say why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser gave up at.
    pub at: usize,
    /// What was expected there.
    pub expected: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            expected,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn lit(&mut self, word: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(word))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "'{'")?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "'['")?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(a));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "'\"'")?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("closing '\"'"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("escape character"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            self.pos += 4;
                            // surrogates don't occur in our own files;
                            // map them to the replacement character
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                _ => {
                    // copy the full UTF-8 scalar, not just one byte
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("valid UTF-8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("a character"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or(ParseError {
                at: start,
                expected: "a finite number",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_cache_shapes() {
        let v = parse(
            r#"{ "version": 1.0, "entries": [ { "key": "a|b", "rate": 1.5e9, "ok": true, "none": null } ] }"#,
        )
        .unwrap();
        assert_eq!(v.get("version").and_then(Value::as_num), Some(1.0));
        let e = &v.get("entries").and_then(Value::as_arr).unwrap()[0];
        assert_eq!(e.get("key").and_then(Value::as_str), Some("a|b"));
        assert_eq!(e.get("rate").and_then(Value::as_num), Some(1.5e9));
        assert_eq!(e.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(e.get("none"), Some(&Value::Null));
    }

    #[test]
    fn round_trips_escapes_and_unicode() {
        let mut m = BTreeMap::new();
        m.insert("k\"\\\n\tμ".to_string(), Value::Str("v\r\u{1}°".into()));
        m.insert("n".to_string(), Value::Num(-0.125));
        let v = Value::Obj(m);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_deterministic_and_reparses() {
        let text = r#"{"b": [1, 2.5], "a": {"x": "y"}, "z": []}"#;
        let v = parse(text).unwrap();
        let p1 = v.pretty();
        let p2 = parse(&p1).unwrap().pretty();
        assert_eq!(p1, p2);
        // keys come back sorted
        assert!(p1.find("\"a\"").unwrap() < p1.find("\"b\"").unwrap());
    }

    #[test]
    fn rejects_garbage_with_an_offset() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            let e = parse(bad).unwrap_err();
            assert!(e.at <= bad.len(), "{bad:?}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn integers_keep_a_decimal_point() {
        assert_eq!(Value::Num(4.0).pretty(), "4.0\n");
        assert_eq!(parse("4.0").unwrap(), Value::Num(4.0));
    }
}
