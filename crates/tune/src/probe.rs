//! The probe harness: short timed sweeps of candidate configurations
//! on small representative domains.
//!
//! Probing follows the library's own compile-once/run-many discipline:
//! every candidate is compiled into a [`Plan`] exactly once, all plans
//! of a session share one process-wide [`PoolHandle`]
//! ([`PoolHandle::shared`] — worker threads are never respawned per
//! probe), and the timed sweep reuses the plan a warm-up pass already
//! exercised. A time budget bounds the whole search: candidates are
//! probed in the (cost-model-ranked) order given, and when the budget
//! runs out the remaining candidates are simply never measured.

use crate::candidates::Candidate;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use stencil_core::{Pattern, Plan, Solver, Tiling, Tuning};
use stencil_grid::{Grid1D, Grid2D, Grid3D};
use stencil_runtime::PoolHandle;

/// Bounds on one probe session.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Wall-clock ceiling for the whole search (warm-ups, sweeps and
    /// the runoff). At least one candidate is always probed.
    pub max_total: Duration,
    /// Largest candidate time block the probe will measure. A tiled
    /// candidate is only representative when the sweep executes two
    /// full time-block rounds — i.e. up to `2 × max_steps` timed steps
    /// — so candidates with `time_block > max_steps` are *skipped*
    /// rather than probed on a truncated sweep whose measurement would
    /// not reflect the tiling being selected.
    pub max_steps: usize,
}

impl Default for Budget {
    /// ~1 s of probing — a fraction of any real workload, enough for
    /// the top-ranked candidates at the probe domain sizes.
    fn default() -> Self {
        Self {
            max_total: Duration::from_millis(1000),
            max_steps: 64,
        }
    }
}

impl Budget {
    /// A budget of `ms` milliseconds total.
    pub fn from_millis(ms: u64) -> Self {
        Self {
            max_total: Duration::from_millis(ms),
            ..Self::default()
        }
    }
}

/// The probe domain: one small representative grid per dimensionality,
/// sized by the request's shape class so cache-resident and
/// memory-bound problems are measured on the right side of the
/// storage hierarchy.
#[derive(Debug, Clone)]
pub enum ProbeDomain {
    /// 1D grid.
    D1(Grid1D),
    /// 2D grid.
    D2(Grid2D),
    /// 3D grid.
    D3(Grid3D),
}

impl ProbeDomain {
    /// Build the probe grid for `p` under shape class `class`
    /// (see [`crate::cache::shape_class`]).
    pub fn build(p: &Pattern, class: &str) -> ProbeDomain {
        // per-class point targets: tiny stays L1/L2-resident, large is
        // firmly memory-bound; all far below real problem sizes
        let scale = match class {
            "tiny" => 0,
            "small" => 1,
            "medium" => 2,
            _ => 3,
        };
        match p.dims() {
            1 => {
                let n = [4_096, 16_384, 65_536, 262_144][scale];
                ProbeDomain::D1(Grid1D::from_fn(n, |i| {
                    ((i * 31 + 7) % 1024) as f64 / 1024.0
                }))
            }
            2 => {
                let n = [48, 96, 160, 256][scale];
                ProbeDomain::D2(Grid2D::from_fn(n, n, |y, x| {
                    ((y * 13 + x * 7) % 257) as f64 / 257.0
                }))
            }
            _ => {
                let n = [16, 24, 40, 64][scale];
                ProbeDomain::D3(Grid3D::from_fn(n, n, n, |z, y, x| {
                    ((z * 5 + y * 3 + x) % 127) as f64 / 127.0
                }))
            }
        }
    }

    /// Grid points per sweep step.
    pub fn points(&self) -> usize {
        match self {
            ProbeDomain::D1(g) => g.len(),
            ProbeDomain::D2(g) => g.ny() * g.nx(),
            ProbeDomain::D3(g) => g.nz() * g.ny() * g.nx(),
        }
    }

    fn run(&self, plan: &Plan, steps: usize) -> Result<(), stencil_core::PlanError> {
        match self {
            ProbeDomain::D1(g) => plan.run_1d(g, steps).map(drop),
            ProbeDomain::D2(g) => plan.run_2d(g, steps).map(drop),
            ProbeDomain::D3(g) => plan.run_3d(g, steps).map(drop),
        }
    }
}

/// One measured candidate.
#[derive(Debug, Clone)]
pub struct ProbeOutcome {
    /// The configuration that was timed.
    pub candidate: Candidate,
    /// Measured throughput in grid-point updates per second.
    pub rate: f64,
}

/// A finished probe session.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Outcomes in probe order (only candidates that compiled and ran
    /// before the budget closed).
    pub outcomes: Vec<ProbeOutcome>,
    /// Candidates skipped because they failed to compile.
    pub skipped: usize,
    /// Candidates never reached before the budget ran out.
    pub unprobed: usize,
    /// Total wall time spent.
    pub spent: Duration,
}

impl ProbeReport {
    /// The fastest measured candidate.
    pub fn best(&self) -> Option<&ProbeOutcome> {
        self.outcomes
            .iter()
            .max_by(|a, b| a.rate.partial_cmp(&b.rate).unwrap())
    }
}

/// Probe `candidates` for `p` in order, sharing one pool of `threads`
/// workers, stopping when `budget` is exhausted. `probe_counter` is
/// incremented once per *timed sweep* (warm-ups and the runoff
/// included) — the determinism tests assert it stays flat on cache
/// hits.
pub fn run(
    p: &Pattern,
    candidates: &[Candidate],
    threads: usize,
    domain: &ProbeDomain,
    budget: &Budget,
    probe_counter: &AtomicU64,
) -> ProbeReport {
    let t0 = Instant::now();
    let pool = PoolHandle::shared(threads);
    let points = domain.points() as f64;
    let mut outcomes: Vec<(ProbeOutcome, Plan)> = Vec::new();
    let mut skipped = 0usize;
    let mut unprobed = 0usize;

    let sweep = |plan: &Plan, steps: usize| -> Option<f64> {
        probe_counter.fetch_add(1, Ordering::Relaxed);
        let _span = stencil_obs::span(stencil_obs::SpanId::TuneProbe);
        let t = Instant::now();
        domain.run(plan, steps).ok()?;
        Some(points * steps as f64 / t.elapsed().as_secs_f64().max(1e-9))
    };

    for (i, &cand) in candidates.iter().enumerate() {
        if !outcomes.is_empty() && t0.elapsed() >= budget.max_total {
            unprobed = candidates.len() - i;
            break;
        }
        // a sweep must fit >= 2 full rounds of the candidate's time
        // block or the measurement says nothing about that tiling
        if time_block_of(&cand) > budget.max_steps {
            skipped += 1;
            continue;
        }
        // compile once; warm-up and the timed sweep reuse the plan
        let mut solver = Solver::new(p.clone())
            .method(cand.method)
            .tiling(cand.tiling)
            .width(cand.width)
            .pool(pool.clone())
            .tuning(Tuning::Static);
        if let Some(ring) = cand.ring {
            solver = solver.ring3(ring);
        }
        let Ok(plan) = solver.compile() else {
            skipped += 1;
            continue;
        };
        let steps = steps_for(&cand);
        if sweep(&plan, steps.min(4)).is_none() {
            skipped += 1;
            continue;
        }
        let Some(rate) = sweep(&plan, steps) else {
            skipped += 1;
            continue;
        };
        outcomes.push((
            ProbeOutcome {
                candidate: cand,
                rate,
            },
            plan,
        ));
    }

    // Runoff: single probes are noisy; re-measure the two leaders on
    // their already-compiled plans and rank them by the *fresh*
    // measurement only (same discipline as core's time-block tuner) —
    // a noise-inflated first reading must be demotable, so the spike
    // is replaced, never kept.
    if outcomes.len() >= 2 && t0.elapsed() < budget.max_total {
        outcomes.sort_by(|a, b| b.0.rate.partial_cmp(&a.0.rate).unwrap());
        for (o, plan) in outcomes.iter_mut().take(2) {
            let steps = steps_for(&o.candidate);
            if let Some(rate) = sweep(plan, steps) {
                o.rate = rate;
            }
        }
    }

    ProbeReport {
        outcomes: outcomes.into_iter().map(|(o, _)| o).collect(),
        skipped,
        unprobed,
        spent: t0.elapsed(),
    }
}

/// The candidate's time block (0 for untiled schemes).
fn time_block_of(c: &Candidate) -> usize {
    match c.tiling {
        Tiling::Tessellate { time_block } | Tiling::Split { time_block } => time_block,
        _ => 0,
    }
}

/// Steps for one timed sweep: two full time-block rounds for tiled
/// candidates (oversized time blocks never reach here — `run` skips
/// them), a small fixed sweep for untiled ones.
fn steps_for(c: &Candidate) -> usize {
    (2 * time_block_of(c)).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates;
    use stencil_core::{kernels, Width};

    #[test]
    fn probes_pick_a_candidate_and_count_sweeps() {
        let p = kernels::heat1d();
        let cands = candidates::generate(&p, Width::W4, 2, None, None, None, 2);
        let domain = ProbeDomain::build(&p, "tiny");
        let counter = AtomicU64::new(0);
        let report = run(&p, &cands, 2, &domain, &Budget::from_millis(400), &counter);
        let best = report.best().expect("at least one candidate measured");
        assert!(best.rate > 0.0);
        assert!(counter.load(Ordering::Relaxed) >= 2, "warm-up + sweep");
    }

    #[test]
    fn budget_early_exit_still_measures_one() {
        let p = kernels::box2d9p();
        let cands = candidates::generate(&p, Width::W4, 1, None, None, None, 4);
        let domain = ProbeDomain::build(&p, "tiny");
        let counter = AtomicU64::new(0);
        // zero budget: the first candidate is still probed (never return
        // empty-handed), the rest are reported unprobed
        let report = run(&p, &cands, 1, &domain, &Budget::from_millis(0), &counter);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(
            report.outcomes.len() + report.skipped + report.unprobed,
            cands.len()
        );
    }

    #[test]
    fn probe_domains_match_dims_and_class_ordering() {
        for (p, dims) in [
            (kernels::heat1d(), 1),
            (kernels::heat2d(), 2),
            (kernels::heat3d(), 3),
        ] {
            let tiny = ProbeDomain::build(&p, "tiny").points();
            let large = ProbeDomain::build(&p, "large").points();
            assert!(tiny < large, "dims {dims}");
        }
    }

    #[test]
    fn uncompilable_candidates_are_skipped_not_fatal() {
        let p = kernels::heat1d();
        // folded m=2 at W1 cannot fit the register pipeline in 1D
        let cands = [Candidate {
            method: stencil_core::Method::Folded { m: 2 },
            tiling: Tiling::None,
            width: Width::W1,
            ring: None,
            score: f64::NAN,
        }];
        let domain = ProbeDomain::build(&p, "tiny");
        let counter = AtomicU64::new(0);
        let report = run(&p, &cands, 1, &domain, &Budget::default(), &counter);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.skipped, 1);
    }
}
