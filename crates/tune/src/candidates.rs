//! Candidate generation for the probe search.
//!
//! Exhaustive search over method × width × time block × spatial tiles
//! would cost seconds per compile; instead the §3.2 op-collect cost
//! model ranks the methods first (the same model `Method::Auto` uses
//! statically), the generator keeps the top-K, and each kept method
//! gets a small *neighborhood* of tiling parameters around the static
//! default. The probe harness walks the list in order and stops when
//! its time budget runs out, so the best-predicted configurations are
//! always measured first and an exhausted budget degrades toward the
//! cost model's own choice rather than toward noise.

use stencil_core::tune::{default_time_block, fold_radius_cap};
use stencil_core::{cost, kernels, FoldPlan, Method, Pattern, Ring3, Tiling, Width};

/// One concrete configuration the probe harness can compile and time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Vectorization method.
    pub method: Method,
    /// Tiling scheme (never [`Tiling::Auto`]).
    pub tiling: Tiling,
    /// Vector width.
    pub width: Width,
    /// Z-ring geometry for 3D register methods (`None` = the static
    /// [`Ring3::auto`] default); always `None` elsewhere.
    pub ring: Option<Ring3>,
    /// The cost-model score that ranked this candidate's method
    /// (higher = predicted better); kept for reporting.
    pub score: f64,
}

/// Rank the methods the executors support for `p` by the cost model's
/// predicted arithmetic saving, best first. The absolute numbers only
/// order the search — the probes decide.
pub fn ranked_methods(p: &Pattern) -> Vec<(Method, f64)> {
    let mut out: Vec<(Method, f64)> = Vec::new();
    // Temporal folding saves `profitability` arithmetic per folded
    // update (Eq. 3) — the model's headline prediction.
    out.push((Method::Folded { m: 2 }, cost::profitability(p, 2)));
    // Single-step register pipeline: shifts reuse only (Fig. 6).
    out.push((Method::TransposeLayout, cost::shift_reuse_profitability(p)));
    // The baseline every figure normalizes to.
    out.push((Method::MultipleLoads, 1.0));
    if p.dims() == 1 {
        // DLT's aligned loads beat multiple-loads only when shuffles
        // dominate — rank it just above the baseline so a probe gets a
        // chance at it in 1D, where the SDSL configuration exists.
        out.push((Method::Dlt, 1.05));
    }
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    out
}

/// True when the register pipeline can execute an `m`-step fold of `p`
/// at `width`: the folded radius fits the pipeline bound and (for
/// 2D/3D) the counterpart schedule fits the register budget — the same
/// checks `Solver::compile` enforces, applied up front so the generator
/// never emits a deeper fold compilation would reject.
pub fn fold_fits(p: &Pattern, m: usize, width: Width) -> bool {
    m * p.radius() <= fold_radius_cap(p.dims(), width)
        && (p.dims() == 1 || FoldPlan::new(p, m).fresh.len() <= stencil_core::exec::folded::MAX_F)
}

/// Width-aware method ranking: [`ranked_methods`] plus a `Folded { m: 3 }`
/// probe wherever the register budget allows it at `width`. The m = 3
/// fold saves more arithmetic than m = 2 whenever its wider counterpart
/// schedule still fits the registers, but only a probe can tell whether
/// the extra register pressure pays off on a given host — so it enters
/// the measured search, never the static resolver.
pub fn ranked_methods_at(p: &Pattern, width: Width) -> Vec<(Method, f64)> {
    let mut out = ranked_methods(p);
    if fold_fits(p, 3, width) {
        out.push((Method::Folded { m: 3 }, cost::profitability(p, 3)));
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    }
    out
}

/// The time-block neighborhood around the static default: the default
/// and its halvings/doublings, deduplicated, nearest-first.
fn time_blocks(dims: usize) -> Vec<usize> {
    let d = default_time_block(dims);
    let mut out = vec![d, d / 2, d * 2, d * 4];
    out.retain(|&tb| tb >= 1);
    out.dedup();
    out
}

/// Widths to probe: the requested width, plus 4 lanes when 8 were
/// requested — AVX-512 downclocking makes "wider" and "faster" distinct
/// questions, which is much of why measured tuning exists.
fn widths(requested: Width) -> Vec<Width> {
    match requested {
        Width::W8 => vec![Width::W8, Width::W4],
        w => vec![w],
    }
}

/// Z-ring geometry candidates for one 3D register method: the static
/// default (`None`, resolved to [`Ring3::auto`] at compile time) plus
/// two neighborhood moves — a shallow/narrow pane for cache-tight hosts
/// and a deep/wide one for bandwidth-bound ones. Non-3D or non-register
/// configurations have no ring axis.
fn rings_for(method: Method, dims: usize, fixed_ring: Option<Ring3>) -> Vec<Option<Ring3>> {
    let register = matches!(method, Method::TransposeLayout | Method::Folded { .. });
    if dims != 3 || !register {
        // the ring axis only exists for 3D register pipelines: a pinned
        // ring must not leak onto methods that cannot execute one (the
        // `Candidate::ring`/`CacheEntry::ring` "None elsewhere" contract)
        return vec![None];
    }
    if let Some(r) = fixed_ring {
        return vec![Some(r)];
    }
    vec![
        None,
        Some(Ring3 { depth: 4, slab: 2 }),
        Some(Ring3 { depth: 16, slab: 8 }),
    ]
}

/// Generate the ordered candidate list for a tuning request.
///
/// `fixed_method`/`fixed_tiling`/`fixed_ring` pin user-chosen
/// parameters: only the unfixed axes are searched. The 3D register
/// methods additionally search the z-ring axes (z-strip depth × x-slab
/// width: the static default plus two neighborhood moves). `top_k`
/// bounds how many cost-model-ranked methods enter the search (the
/// budget usually bites first).
pub fn generate(
    p: &Pattern,
    requested_width: Width,
    threads: usize,
    fixed_method: Option<Method>,
    fixed_tiling: Option<Tiling>,
    fixed_ring: Option<Ring3>,
    top_k: usize,
) -> Vec<Candidate> {
    let dims = p.dims();
    let methods: Vec<(Method, f64)> = match (fixed_method, fixed_tiling) {
        (Some(m), _) => vec![(m, f64::NAN)],
        // split tiling admits only DLT (the SDSL configuration) in any
        // dimensionality — the ranked list would offer nothing valid
        (None, Some(Tiling::Split { .. })) => vec![(Method::Dlt, f64::NAN)],
        (None, _) => ranked_methods_at(p, requested_width)
            .into_iter()
            .take(top_k.max(1))
            .collect(),
    };
    // Width is only an open axis on full-auto requests: a caller who
    // pinned the method is comparing configurations (e.g. the fig9
    // AVX-512 column) and must get exactly the width they asked for.
    let widths = if fixed_method.is_some() {
        vec![requested_width]
    } else {
        widths(requested_width)
    };
    let mut out = Vec::new();
    for (method, score) in methods {
        let tilings: Vec<Tiling> = match fixed_tiling {
            Some(t) => vec![t],
            None => tilings_for(method, dims, threads),
        };
        for tiling in tilings {
            if !composes(method, tiling, dims) {
                continue;
            }
            for &width in &widths {
                // the width neighborhood can narrow below what a deep
                // fold needs (m = 3 at 8 lanes does not fit 4): drop
                // per-width rather than hand the probe a dead compile
                if let Method::Folded { m } = method {
                    if !fold_fits(p, m, width) {
                        continue;
                    }
                }
                for ring in rings_for(method, dims, fixed_ring) {
                    out.push(Candidate {
                        method,
                        tiling,
                        width,
                        ring,
                        score,
                    });
                }
            }
        }
    }
    // Safety net: whatever the fixed axes, the static resolvers' pick
    // always exists — a request Tuning::Static could satisfy must never
    // die with "no candidates" under Tuning::Measured.
    if out.is_empty() {
        let method = fixed_method.unwrap_or_else(|| {
            stencil_core::tune::auto_method(
                p,
                requested_width,
                fixed_tiling.unwrap_or(Tiling::Auto),
            )
        });
        let tiling =
            fixed_tiling.unwrap_or_else(|| stencil_core::tune::auto_tiling(dims, method, threads));
        out.push(Candidate {
            method,
            tiling,
            width: requested_width,
            ring: fixed_ring,
            score: f64::NAN,
        });
    }
    out
}

/// Hill-climb neighborhood around an `incumbent` configuration — the
/// challenger generator for online retuning. Unlike [`generate`], which
/// searches outward from the *cost model's* ranking, this searches
/// outward from a configuration that already won a probe: the incumbent
/// itself first (a fresh measurement under today's conditions), then
/// every single-axis move — time block halved/doubled, z-ring
/// depth/slab halved/doubled, the width narrowed — and finally the
/// top-ranked *other* methods at their natural tiling. The method
/// alternates deliberately ignore probe-history dominance: a dominated
/// method re-enters here, so a changed machine or drifted workload gets
/// its periodic re-probe for free.
pub fn neighborhood(
    p: &Pattern,
    incumbent: &Candidate,
    threads: usize,
    top_k: usize,
) -> Vec<Candidate> {
    let dims = p.dims();
    let mut out: Vec<Candidate> = Vec::new();
    let push = |c: Candidate, out: &mut Vec<Candidate>| {
        if !composes(c.method, c.tiling, dims) {
            return;
        }
        if let Method::Folded { m } = c.method {
            if !fold_fits(p, m, c.width) {
                return;
            }
        }
        if let Some(r) = c.ring {
            if !r.valid() {
                return;
            }
        }
        // dedup on the configuration axes only: the same move can be
        // reached with different (or NaN) scores
        if !out.iter().any(|e| {
            e.method == c.method && e.tiling == c.tiling && e.width == c.width && e.ring == c.ring
        }) {
            out.push(c);
        }
    };
    push(*incumbent, &mut out);
    // single-axis tiling moves
    let tb_moves = |tb: usize| [tb * 2, tb / 2].into_iter().filter(|&t| t >= 1);
    match incumbent.tiling {
        Tiling::Tessellate { time_block } => {
            for tb in tb_moves(time_block) {
                push(
                    Candidate {
                        tiling: Tiling::Tessellate { time_block: tb },
                        ..*incumbent
                    },
                    &mut out,
                );
            }
        }
        Tiling::Split { time_block } => {
            for tb in tb_moves(time_block) {
                push(
                    Candidate {
                        tiling: Tiling::Split { time_block: tb },
                        ..*incumbent
                    },
                    &mut out,
                );
            }
        }
        Tiling::Spatial { block: (a, b) } => {
            for block in [(a * 2, b), (a.max(2) / 2, b), (a, b * 2), (a, b.max(2) / 2)] {
                push(
                    Candidate {
                        tiling: Tiling::Spatial { block },
                        ..*incumbent
                    },
                    &mut out,
                );
            }
        }
        Tiling::None | Tiling::Auto => {
            // block-free incumbent: tiling at the static default is the
            // one move on this axis
            push(
                Candidate {
                    tiling: Tiling::Tessellate {
                        time_block: default_time_block(dims),
                    },
                    ..*incumbent
                },
                &mut out,
            );
        }
    }
    // single-axis z-ring moves (3D register methods only)
    for ring in match incumbent.ring {
        Some(r) => vec![
            Some(Ring3 {
                depth: r.depth * 2,
                ..r
            }),
            Some(Ring3 {
                depth: r.depth.max(2) / 2,
                ..r
            }),
            Some(Ring3 {
                slab: r.slab * 2,
                ..r
            }),
            Some(Ring3 {
                slab: r.slab.max(2) / 2,
                ..r
            }),
        ],
        None => rings_for(incumbent.method, dims, None),
    } {
        if ring != incumbent.ring {
            push(Candidate { ring, ..*incumbent }, &mut out);
        }
    }
    // width narrowing (the W8-vs-W4 downclocking question, revisited)
    if incumbent.width == Width::W8 {
        push(
            Candidate {
                width: Width::W4,
                ..*incumbent
            },
            &mut out,
        );
    }
    // method alternates at their natural tiling — including methods the
    // probe history has marked dominated
    for (method, score) in ranked_methods_at(p, incumbent.width)
        .into_iter()
        .take(top_k.max(1))
    {
        if method == incumbent.method {
            continue;
        }
        let tiling = stencil_core::tune::auto_tiling(dims, method, threads);
        for ring in rings_for(method, dims, None) {
            push(
                Candidate {
                    method,
                    tiling,
                    width: incumbent.width,
                    ring,
                    score,
                },
                &mut out,
            );
        }
    }
    out
}

/// Tiling candidates for one method: its natural pairing first, then
/// the neighborhood moves.
fn tilings_for(method: Method, dims: usize, threads: usize) -> Vec<Tiling> {
    let mut out = Vec::new();
    if method == Method::Dlt {
        // DLT pairs with split tiling (SDSL); block-free is 1D-only.
        for tb in time_blocks(dims) {
            out.push(Tiling::Split { time_block: tb });
        }
        if dims == 1 {
            out.push(Tiling::None);
        }
        return out;
    }
    for tb in time_blocks(dims) {
        out.push(Tiling::Tessellate { time_block: tb });
    }
    // Block-free is competitive single-threaded and for small grids.
    if threads == 1 {
        out.push(Tiling::None);
    }
    // Plain spatial blocking: only the vector/scalar kernel families
    // support it, and only in 2D/3D — two representative tile shapes.
    if dims >= 2 && matches!(method, Method::MultipleLoads | Method::Scalar) {
        out.push(Tiling::Spatial { block: (8, 64) });
        out.push(Tiling::Spatial { block: (16, 128) });
    }
    out
}

/// Mirror of `Solver::compile`'s method × tiling × dimension rules, so
/// the generator never emits a candidate the probe would only throw
/// away. (A drifted rule is still safe: the probe skips configurations
/// that fail to compile.)
fn composes(method: Method, tiling: Tiling, dims: usize) -> bool {
    match (method, tiling) {
        (Method::Dlt, Tiling::Split { .. }) => true,
        (Method::Dlt, Tiling::None) => dims == 1,
        (Method::Dlt, _) => false,
        (_, Tiling::Split { .. }) => false,
        (Method::TransposeLayout | Method::Folded { .. }, Tiling::Spatial { .. }) => false,
        (_, Tiling::Spatial { .. }) => dims >= 2,
        _ => true,
    }
}

/// The cost model's own pick for this request — recorded in every cache
/// entry so `stencil-bench tune` can print chosen-vs-model.
pub fn model_choice(p: &Pattern, width: Width, fixed_tiling: Option<Tiling>) -> Method {
    stencil_core::tune::auto_method(p, width, fixed_tiling.unwrap_or(Tiling::Auto))
}

/// Every candidate list is non-trivial for the Table-1 kernels; used by
/// tests and kept here so the invariant lives next to the generator.
pub fn table1_patterns() -> Vec<(&'static str, Pattern)> {
    vec![
        ("1D-Heat", kernels::heat1d()),
        ("1D5P", kernels::d1p5()),
        ("2D-Heat", kernels::heat2d()),
        ("2D9P", kernels::box2d9p()),
        ("GB", kernels::gb()),
        ("3D-Heat", kernels::heat3d()),
        ("3D27P", kernels::box3d27p()),
        ("3D125P", kernels::box3d125p()),
        ("3DStar-R2", kernels::star3d_r2()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_seeds_a_profitable_leader() {
        // the top-ranked method always predicts a real saving, and the
        // paper's showcase kernels (dense boxes, where folding shines)
        // put temporal folding first; 3D-Heat legitimately ranks
        // shifts-reuse above folding (sparse star, deep column reuse)
        for (name, p) in table1_patterns() {
            let ranked = ranked_methods(&p);
            assert!(ranked[0].1 > 1.0, "{name}");
            assert!(
                ranked
                    .iter()
                    .any(|&(m, s)| m == Method::Folded { m: 2 } && s > 1.0),
                "{name}: folding must be in the pool"
            );
        }
        for p in [kernels::box2d9p(), kernels::box3d27p()] {
            assert_eq!(ranked_methods(&p)[0].0, Method::Folded { m: 2 });
        }
    }

    #[test]
    fn generator_respects_fixed_axes() {
        let p = kernels::heat2d();
        let only_tiling = generate(
            &p,
            Width::W4,
            4,
            Some(Method::TransposeLayout),
            None,
            None,
            3,
        );
        assert!(!only_tiling.is_empty());
        assert!(only_tiling
            .iter()
            .all(|c| c.method == Method::TransposeLayout));
        let only_method = generate(
            &p,
            Width::W4,
            4,
            None,
            Some(Tiling::Tessellate { time_block: 6 }),
            None,
            3,
        );
        assert!(!only_method.is_empty());
        assert!(only_method
            .iter()
            .all(|c| c.tiling == Tiling::Tessellate { time_block: 6 }));
    }

    #[test]
    fn every_candidate_compiles() {
        // the composes() mirror stays in sync with Solver::compile
        for (name, p) in table1_patterns() {
            for threads in [1, 4] {
                for c in generate(&p, Width::native_max(), threads, None, None, None, 4) {
                    let mut s = stencil_core::Solver::new(p.clone())
                        .method(c.method)
                        .tiling(c.tiling)
                        .width(c.width);
                    if let Some(ring) = c.ring {
                        s = s.ring3(ring);
                    }
                    let r = s.compile();
                    // wide folds can exceed the register budget at
                    // narrow widths; that is the probe's skip path, not
                    // a generator bug — everything else must compile
                    if let Err(e) = r {
                        assert!(
                            matches!(
                                e,
                                stencil_core::PlanError::InvalidFold { .. }
                                    | stencil_core::PlanError::FoldPlanTooComplex { .. }
                            ),
                            "{name}: {c:?} -> {e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fixed_split_tiling_yields_dlt_candidates_in_any_dimension() {
        // regression: split tiling admits only DLT, which the ranked
        // method list omits for 2D/3D — the generator must still
        // produce compilable candidates (the SDSL configuration)
        for p in [kernels::heat1d(), kernels::heat2d(), kernels::heat3d()] {
            let cands = generate(
                &p,
                Width::W4,
                4,
                None,
                Some(Tiling::Split { time_block: 4 }),
                None,
                3,
            );
            assert!(!cands.is_empty(), "dims {}", p.dims());
            assert!(cands.iter().all(|c| c.method == Method::Dlt));
            for c in &cands {
                stencil_core::Solver::new(p.clone())
                    .method(c.method)
                    .tiling(c.tiling)
                    .width(c.width)
                    .compile()
                    .unwrap();
            }
        }
    }

    #[test]
    fn spatial_candidates_only_in_2d_plus_and_vector_family() {
        let c1 = generate(&kernels::heat1d(), Width::W4, 4, None, None, None, 4);
        assert!(c1
            .iter()
            .all(|c| !matches!(c.tiling, Tiling::Spatial { .. })));
        let c2 = generate(&kernels::heat2d(), Width::W4, 4, None, None, None, 4);
        assert!(c2
            .iter()
            .filter(|c| matches!(c.tiling, Tiling::Spatial { .. }))
            .all(|c| c.method == Method::MultipleLoads || c.method == Method::Scalar));
    }

    #[test]
    fn folded_m3_enters_the_pool_by_radius_and_width() {
        let has_m3 = |p: &Pattern, w: Width| {
            generate(p, w, 4, None, None, None, 8)
                .iter()
                .any(|c| c.method == Method::Folded { m: 3 })
        };
        // 1D cap is one radius cell per lane: heat1d (r = 1) folds to
        // radius 3, which fits 4 and 8 lanes alike...
        assert!(has_m3(&kernels::heat1d(), Width::W4));
        assert!(has_m3(&kernels::heat1d(), Width::W8));
        // ...while d1p5 (r = 2) folds to radius 6 — beyond 4 lanes,
        // within 8: the candidate must appear and disappear with width.
        assert!(!has_m3(&kernels::d1p5(), Width::W4));
        assert!(has_m3(&kernels::d1p5(), Width::W8));
        // the deeper 3D fold window (MAX_R3 = 4) admits three-step
        // folds of the radius-1 star at vector widths...
        assert!(has_m3(&kernels::heat3d(), Width::W8));
        assert!(has_m3(&kernels::heat3d(), Width::W4));
        // ...but a radius-2 box at m = 3 reaches radius 6, beyond it
        assert!(!has_m3(&kernels::box3d125p(), Width::W8));
        // every emitted m = 3 candidate actually compiles
        for c in generate(&kernels::d1p5(), Width::W8, 4, None, None, None, 8) {
            if c.method == (Method::Folded { m: 3 }) {
                stencil_core::Solver::new(kernels::d1p5())
                    .method(c.method)
                    .tiling(c.tiling)
                    .width(c.width)
                    .compile()
                    .unwrap();
            }
        }
    }

    #[test]
    fn width_neighborhood_narrows_from_w8() {
        let c = generate(&kernels::heat1d(), Width::W8, 1, None, None, None, 1);
        assert!(c.iter().any(|x| x.width == Width::W8));
        assert!(c.iter().any(|x| x.width == Width::W4));
        let c4 = generate(&kernels::heat1d(), Width::W4, 1, None, None, None, 1);
        assert!(c4.iter().all(|x| x.width == Width::W4));
    }

    #[test]
    fn ring_axis_searched_only_for_3d_register_methods() {
        // 3D register candidates carry ring neighborhood moves...
        let c3 = generate(&kernels::heat3d(), Width::W4, 4, None, None, None, 4);
        assert!(c3
            .iter()
            .any(|c| matches!(c.method, Method::Folded { .. }) && c.ring.is_some()));
        assert!(c3
            .iter()
            .any(|c| matches!(c.method, Method::Folded { .. }) && c.ring.is_none()));
        // ...the vector family and lower dimensionalities never do
        assert!(c3
            .iter()
            .filter(|c| c.method == Method::MultipleLoads)
            .all(|c| c.ring.is_none()));
        let c2 = generate(&kernels::heat2d(), Width::W4, 4, None, None, None, 4);
        assert!(c2.iter().all(|c| c.ring.is_none()));
        // a pinned ring collapses the axis...
        let pinned = Ring3 { depth: 6, slab: 3 };
        let cp = generate(
            &kernels::heat3d(),
            Width::W4,
            4,
            None,
            None,
            Some(pinned),
            4,
        );
        assert!(cp
            .iter()
            .filter(|c| matches!(c.method, Method::Folded { .. } | Method::TransposeLayout))
            .all(|c| c.ring == Some(pinned)));
        // ...but never leaks onto methods (or dimensionalities) that
        // cannot execute a ring
        assert!(cp
            .iter()
            .filter(|c| c.method == Method::MultipleLoads)
            .all(|c| c.ring.is_none()));
        let cp2 = generate(
            &kernels::heat2d(),
            Width::W4,
            4,
            None,
            None,
            Some(pinned),
            4,
        );
        assert!(cp2.iter().all(|c| c.ring.is_none()));
    }

    #[test]
    fn deeper_fold_window_keeps_m2_selectable_for_radius2_3d() {
        // the MAX_R3 = 4 window exists so folded m = 2 stays available
        // for radius-2 3D stencils (folded radius 4)
        let p = kernels::box3d125p();
        assert!(fold_fits(&p, 2, Width::W4));
        assert!(fold_fits(&p, 2, Width::W8));
        assert!(!fold_fits(&p, 3, Width::W8), "radius 6 exceeds the window");
        let cands = generate(&p, Width::W4, 4, None, None, None, 8);
        assert!(cands.iter().any(|c| c.method == Method::Folded { m: 2 }));
        // and every emitted m = 2 candidate compiles with its ring
        for c in cands.iter().filter(|c| c.method == Method::Folded { m: 2 }) {
            let mut s = stencil_core::Solver::new(p.clone())
                .method(c.method)
                .tiling(c.tiling)
                .width(c.width);
            if let Some(r) = c.ring {
                s = s.ring3(r);
            }
            let plan = s.compile().unwrap();
            assert!(plan.ring3().is_some());
        }
    }
}
