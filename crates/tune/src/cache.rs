//! The persistent per-host plan cache.
//!
//! One JSON file (see [`crate::json`]) holding every decision the
//! probing tuner has measured on this machine. Entries are keyed by
//! `hostname | ISA build | thread count | vector width | pattern
//! signature | domain shape class | fixed-parameter constraints`, so a
//! measurement never leaks across machines, ISA builds, pool sizes or
//! problem classes — a key mismatch is simply a miss, which forces a
//! re-probe on the new host.
//!
//! A corrupt or unreadable file is treated as an empty cache (the tuner
//! degrades to fresh probing, and `Tuning::Static` stays available as
//! the no-probe fallback); it is overwritten wholesale on the next
//! save, never partially edited.

use crate::host::HostFingerprint;
use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;
use stencil_core::{Method, Pattern, Tiling, Width};

/// Current cache file schema version; bump on incompatible change
/// (older files are discarded, not migrated — they are measurements,
/// not state).
pub const CACHE_VERSION: f64 = 1.0;

/// One persisted tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Full cache key (see module docs for the components).
    pub key: String,
    /// Winning method.
    pub method: Method,
    /// Winning tiling.
    pub tiling: Tiling,
    /// Winning width.
    pub width: Width,
    /// Measured throughput of the winner, in grid-point updates/sec.
    pub rate: f64,
    /// What the §3.2 cost model would have chosen, for
    /// chosen-vs-model reporting (`stencil-bench tune`).
    pub model_method: Method,
    /// Candidates actually probed before the budget closed the search.
    pub probes: usize,
    /// Wall time the probe search spent, in milliseconds.
    pub spent_ms: f64,
}

/// How a cache image relates to the current host fingerprint — the
/// breakdown [`TuneCache::health_for`] computes so long-running services
/// can report *why* a warm start went cold (foreign-ISA entries after a
/// rebuild, a cache file copied from another machine, ...).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheHealth {
    /// Entries in the image.
    pub total: usize,
    /// Entries this host/build can hit.
    pub local: usize,
    /// Entries from this machine but a different ISA build — invalidated
    /// by the fingerprint (the binary's vector ISA diverged from the
    /// stamp the measurement was taken under).
    pub foreign_isa: usize,
    /// Entries from other machines.
    pub foreign_host: usize,
}

/// In-memory image of the cache file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl TuneCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of persisted decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no decision is persisted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a decision.
    pub fn get(&self, key: &str) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// Iterate over every persisted decision (key order).
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Classify this image's entries against `host`: how many a compile
    /// on this host/build could actually hit, how many belong to the
    /// same machine but a different ISA build (stale after a
    /// rebuild with different target features — the invalidation the
    /// fingerprint exists for), and how many to other machines
    /// entirely. The serving layer turns a nonzero foreign count into a
    /// one-line operator warning instead of a silent cold start.
    pub fn health_for(&self, host: &HostFingerprint) -> CacheHealth {
        let local_prefix = format!("{}|", host.key_prefix());
        let host_prefix = format!("{}|", host.hostname);
        let mut h = CacheHealth::default();
        for e in self.entries.values() {
            h.total += 1;
            if e.key.starts_with(&local_prefix) {
                h.local += 1;
            } else if e.key.starts_with(&host_prefix) {
                h.foreign_isa += 1;
            } else {
                h.foreign_host += 1;
            }
        }
        h
    }

    /// Insert (or replace) a decision.
    pub fn put(&mut self, entry: CacheEntry) {
        self.entries.insert(entry.key.clone(), entry);
    }

    /// Adopt every entry of `other` under a key this cache does not
    /// already hold (existing entries win). Used before a save to fold
    /// in decisions other processes persisted since this image was
    /// loaded, so a full-image write never erases them.
    pub fn merge_missing_from(&mut self, other: TuneCache) {
        for (k, e) in other.entries {
            self.entries.entry(k).or_insert(e);
        }
    }

    /// Load from `path`. `Ok(None)` when the file does not exist;
    /// `Err` when it exists but cannot be read or parsed (the caller
    /// decides whether to degrade to an empty cache).
    pub fn load(path: &Path) -> Result<Option<TuneCache>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("unreadable cache file {path:?}: {e}")),
        };
        let doc = json::parse(&text).map_err(|e| format!("corrupt cache file {path:?}: {e}"))?;
        Self::from_json(&doc)
            .map(Some)
            .ok_or_else(|| format!("corrupt cache file {path:?}: unexpected schema"))
    }

    /// Serialize to `path`, creating parent directories as needed. The
    /// write is atomic (temp file + rename) so a concurrent reader can
    /// never observe a truncated file and misclassify it as corrupt.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json().pretty())?;
        std::fs::rename(&tmp, path)
    }

    /// The cache as a JSON document.
    pub fn to_json(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .values()
            .map(|e| {
                let mut m = BTreeMap::new();
                m.insert("key".into(), Value::Str(e.key.clone()));
                m.insert("method".into(), Value::Str(method_str(e.method)));
                m.insert("tiling".into(), Value::Str(tiling_str(e.tiling)));
                m.insert("width".into(), Value::Num(e.width.lanes() as f64));
                m.insert("rate".into(), Value::Num(e.rate));
                m.insert(
                    "model_method".into(),
                    Value::Str(method_str(e.model_method)),
                );
                m.insert("probes".into(), Value::Num(e.probes as f64));
                m.insert("spent_ms".into(), Value::Num(e.spent_ms));
                Value::Obj(m)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Num(CACHE_VERSION));
        root.insert("entries".into(), Value::Arr(entries));
        Value::Obj(root)
    }

    /// Rebuild from a JSON document (`None` on schema mismatch).
    ///
    /// Entries whose decision decodes to `Method::Auto`/`Tiling::Auto`
    /// are semantically corrupt — a decision must be concrete — and are
    /// dropped (forcing a re-probe under that key) rather than allowed
    /// to leak an unresolved `Auto` into a `TuneDecision`.
    pub fn from_json(doc: &Value) -> Option<TuneCache> {
        if doc.get("version")?.as_num()? != CACHE_VERSION {
            return None;
        }
        let mut cache = TuneCache::new();
        for e in doc.get("entries")?.as_arr()? {
            let method = parse_method(e.get("method")?.as_str()?)?;
            let tiling = parse_tiling(e.get("tiling")?.as_str()?)?;
            if method == Method::Auto || tiling == Tiling::Auto {
                continue;
            }
            cache.put(CacheEntry {
                key: e.get("key")?.as_str()?.to_string(),
                method,
                tiling,
                width: parse_width(e.get("width")?.as_num()? as usize)?,
                rate: e.get("rate")?.as_num()?,
                model_method: parse_method(e.get("model_method")?.as_str()?)?,
                probes: e.get("probes")?.as_num()? as usize,
                spent_ms: e.get("spent_ms")?.as_num()?,
            });
        }
        Some(cache)
    }
}

// ---------------------------------------------------------------------
// Keys.
// ---------------------------------------------------------------------

/// Stable signature of a stencil pattern — delegates to
/// [`Pattern::signature`], which is the canonical implementation since
/// the serving plan registry keys by the same string (kept here as a
/// free function for cache-key call sites and backward compatibility).
pub fn pattern_signature(p: &Pattern) -> String {
    p.signature()
}

/// Coarse domain shape class — re-export of
/// [`stencil_core::tune::shape_class`], the canonical implementation
/// shared with the serving plan registry.
pub use stencil_core::tune::shape_class;

/// Build the full cache key for a tuning request.
pub fn cache_key(
    host: &HostFingerprint,
    p: &Pattern,
    width: Width,
    threads: usize,
    fixed_method: Option<Method>,
    fixed_tiling: Option<Tiling>,
    hint: Option<&[usize]>,
) -> String {
    format!(
        "{}|t{}|w{}|{}|{}|m={}|ti={}",
        host.key_prefix(),
        threads,
        width.lanes(),
        pattern_signature(p),
        shape_class(hint),
        fixed_method.map(method_str).unwrap_or_else(|| "*".into()),
        fixed_tiling.map(tiling_str).unwrap_or_else(|| "*".into()),
    )
}

// ---------------------------------------------------------------------
// Compact string encodings for the enums (JSON-friendly, greppable).
// ---------------------------------------------------------------------

/// Encode a method as a short stable token (`folded:2`, `xlayout`, ...).
pub fn method_str(m: Method) -> String {
    match m {
        Method::Scalar => "scalar".into(),
        Method::MultipleLoads => "multiload".into(),
        Method::DataReorg => "reorg".into(),
        Method::Dlt => "dlt".into(),
        Method::TransposeLayout => "xlayout".into(),
        Method::Folded { m } => format!("folded:{m}"),
        Method::Auto => "auto".into(),
    }
}

/// Decode [`method_str`].
pub fn parse_method(s: &str) -> Option<Method> {
    Some(match s {
        "scalar" => Method::Scalar,
        "multiload" => Method::MultipleLoads,
        "reorg" => Method::DataReorg,
        "dlt" => Method::Dlt,
        "xlayout" => Method::TransposeLayout,
        "auto" => Method::Auto,
        _ => Method::Folded {
            m: s.strip_prefix("folded:")?.parse().ok()?,
        },
    })
}

/// Encode a tiling as a short stable token (`tess:8`, `spatial:8x64`, ...).
pub fn tiling_str(t: Tiling) -> String {
    match t {
        Tiling::None => "none".into(),
        Tiling::Auto => "auto".into(),
        Tiling::Tessellate { time_block } => format!("tess:{time_block}"),
        Tiling::Split { time_block } => format!("split:{time_block}"),
        Tiling::Spatial { block: (a, b) } => format!("spatial:{a}x{b}"),
    }
}

/// Decode [`tiling_str`].
pub fn parse_tiling(s: &str) -> Option<Tiling> {
    if s == "none" {
        return Some(Tiling::None);
    }
    if s == "auto" {
        return Some(Tiling::Auto);
    }
    if let Some(tb) = s.strip_prefix("tess:") {
        return Some(Tiling::Tessellate {
            time_block: tb.parse().ok()?,
        });
    }
    if let Some(tb) = s.strip_prefix("split:") {
        return Some(Tiling::Split {
            time_block: tb.parse().ok()?,
        });
    }
    let (a, b) = s.strip_prefix("spatial:")?.split_once('x')?;
    Some(Tiling::Spatial {
        block: (a.parse().ok()?, b.parse().ok()?),
    })
}

/// Decode a lane count back into a [`Width`].
pub fn parse_width(lanes: usize) -> Option<Width> {
    Some(match lanes {
        1 => Width::W1,
        4 => Width::W4,
        8 => Width::W8,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn host(name: &str, isa: &str) -> HostFingerprint {
        HostFingerprint {
            hostname: name.into(),
            isa: isa.into(),
            threads: 8,
        }
    }

    fn sample_entry(key: &str) -> CacheEntry {
        CacheEntry {
            key: key.into(),
            method: Method::Folded { m: 2 },
            tiling: Tiling::Tessellate { time_block: 16 },
            width: Width::W4,
            rate: 1.25e9,
            model_method: Method::Folded { m: 2 },
            probes: 7,
            spent_ms: 41.5,
        }
    }

    #[test]
    fn entry_round_trips_through_json_text() {
        let mut cache = TuneCache::new();
        cache.put(sample_entry("h|avx2-w4|t8|w4|d1r1p3-aa|medium|m=*|ti=*"));
        cache.put(CacheEntry {
            key: "other".into(),
            method: Method::Dlt,
            tiling: Tiling::Split { time_block: 8 },
            width: Width::W8,
            model_method: Method::TransposeLayout,
            ..sample_entry("other")
        });
        let text = cache.to_json().pretty();
        let back = TuneCache::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cache);
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let path = std::env::temp_dir().join("stencil-tune-test/roundtrip/cache.json");
        let _ = std::fs::remove_file(&path);
        let mut cache = TuneCache::new();
        cache.put(sample_entry("k1"));
        cache.save(&path).unwrap();
        let back = TuneCache::load(&path).unwrap().unwrap();
        assert_eq!(back, cache);
        assert_eq!(back.get("k1").unwrap().probes, 7);
        let _ = std::fs::remove_file(&path);
        // a missing file is Ok(None), not an error
        assert_eq!(TuneCache::load(&path).unwrap(), None);
    }

    #[test]
    fn corrupt_file_is_a_described_error() {
        let path = std::env::temp_dir().join("stencil-tune-test-corrupt.json");
        std::fs::write(&path, "{ this is not json").unwrap();
        let err = TuneCache::load(&path).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        // valid JSON, wrong schema
        std::fs::write(&path, "[1, 2, 3]").unwrap();
        assert!(TuneCache::load(&path).unwrap_err().contains("schema"));
        // wrong version is also a schema mismatch (None from from_json)
        std::fs::write(&path, "{\"version\": 99.0, \"entries\": []}").unwrap();
        assert!(TuneCache::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_entries_are_semantic_corruption_and_dropped() {
        // a decision must be concrete: hand-merged or future-schema
        // entries carrying "auto" must not round-trip into the cache
        let text = r#"{
  "version": 1.0,
  "entries": [
    { "key": "bad-method", "method": "auto", "tiling": "none", "width": 4.0,
      "rate": 1.0, "model_method": "scalar", "probes": 1.0, "spent_ms": 1.0 },
    { "key": "bad-tiling", "method": "scalar", "tiling": "auto", "width": 4.0,
      "rate": 1.0, "model_method": "scalar", "probes": 1.0, "spent_ms": 1.0 },
    { "key": "good", "method": "scalar", "tiling": "none", "width": 4.0,
      "rate": 1.0, "model_method": "scalar", "probes": 1.0, "spent_ms": 1.0 }
  ]
}"#;
        let cache = TuneCache::from_json(&crate::json::parse(text).unwrap()).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("good").is_some());
        assert!(cache.get("bad-method").is_none());
        assert!(cache.get("bad-tiling").is_none());
    }

    #[test]
    fn merge_keeps_own_entries_and_adopts_foreign_ones() {
        let mut ours = TuneCache::new();
        ours.put(CacheEntry {
            rate: 111.0,
            ..sample_entry("shared")
        });
        ours.put(sample_entry("only-ours"));
        let mut theirs = TuneCache::new();
        theirs.put(CacheEntry {
            rate: 999.0,
            ..sample_entry("shared")
        });
        theirs.put(sample_entry("only-theirs"));
        ours.merge_missing_from(theirs);
        assert_eq!(ours.len(), 3);
        // conflict: our decision wins
        assert_eq!(ours.get("shared").unwrap().rate, 111.0);
        assert!(ours.get("only-theirs").is_some());
    }

    #[test]
    fn keys_differ_across_host_isa_pattern_and_class() {
        let p = kernels::heat1d();
        let base = cache_key(&host("a", "avx2-w4"), &p, Width::W4, 8, None, None, None);
        let other_host = cache_key(&host("b", "avx2-w4"), &p, Width::W4, 8, None, None, None);
        let other_isa = cache_key(&host("a", "avx512f-w8"), &p, Width::W4, 8, None, None, None);
        let other_pat = cache_key(
            &host("a", "avx2-w4"),
            &kernels::d1p5(),
            Width::W4,
            8,
            None,
            None,
            None,
        );
        let other_class = cache_key(
            &host("a", "avx2-w4"),
            &p,
            Width::W4,
            8,
            None,
            None,
            Some(&[1024]),
        );
        for k in [&other_host, &other_isa, &other_pat, &other_class] {
            assert_ne!(&base, k);
        }
        // same request, same key (determinism)
        assert_eq!(
            base,
            cache_key(&host("a", "avx2-w4"), &p, Width::W4, 8, None, None, None)
        );
    }

    #[test]
    fn signature_tracks_weights_not_just_shape() {
        let a = pattern_signature(&Pattern::new_1d(&[0.25, 0.5, 0.25]));
        let b = pattern_signature(&Pattern::new_1d(&[0.2, 0.6, 0.2]));
        assert_ne!(a, b);
        assert!(a.starts_with("d1r1p3-"));
    }

    #[test]
    fn shape_classes_bucket_by_points() {
        assert_eq!(shape_class(None), "medium");
        assert_eq!(shape_class(Some(&[4096])), "tiny");
        assert_eq!(shape_class(Some(&[256, 256])), "small");
        assert_eq!(shape_class(Some(&[1024, 1024])), "medium");
        assert_eq!(shape_class(Some(&[400, 400, 400])), "large");
    }

    #[test]
    fn enum_encodings_round_trip() {
        for m in [
            Method::Scalar,
            Method::MultipleLoads,
            Method::DataReorg,
            Method::Dlt,
            Method::TransposeLayout,
            Method::Folded { m: 3 },
            Method::Auto,
        ] {
            assert_eq!(parse_method(&method_str(m)), Some(m));
        }
        for t in [
            Tiling::None,
            Tiling::Auto,
            Tiling::Tessellate { time_block: 12 },
            Tiling::Split { time_block: 5 },
            Tiling::Spatial { block: (8, 64) },
        ] {
            assert_eq!(parse_tiling(&tiling_str(t)), Some(t));
        }
        for w in [Width::W1, Width::W4, Width::W8] {
            assert_eq!(parse_width(w.lanes()), Some(w));
        }
        assert_eq!(parse_method("folded:x"), None);
        assert_eq!(parse_tiling("spatial:8"), None);
        assert_eq!(parse_width(3), None);
    }
}
