//! The persistent per-host plan cache.
//!
//! One JSON file (see [`crate::json`]) holding every decision the
//! probing tuner has measured on this machine. Entries are keyed by
//! `hostname | ISA build | thread count | vector width | pattern
//! signature | domain shape class | fixed-parameter constraints`, so a
//! measurement never leaks across machines, ISA builds, pool sizes or
//! problem classes — a key mismatch is simply a miss, which forces a
//! re-probe on the new host.
//!
//! A corrupt or unreadable file is treated as an empty cache (the tuner
//! degrades to fresh probing, and `Tuning::Static` stays available as
//! the no-probe fallback); it is overwritten wholesale on the next
//! save, never partially edited.

use crate::host::HostFingerprint;
use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;
use stencil_core::{Method, Pattern, Ring3, Tiling, Width};

/// Current cache file schema version; bump on incompatible change
/// (older files are discarded, not migrated — they are measurements,
/// not state). v2.0: cache keys gained the `|ri=` z-ring component and
/// entries the `ring`/`method_rates` fields — v1.0 entries could never
/// be hit again and would only be dead weight, so they are dropped.
pub const CACHE_VERSION: f64 = 2.0;

/// One persisted tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Full cache key (see module docs for the components).
    pub key: String,
    /// Winning method.
    pub method: Method,
    /// Winning tiling.
    pub tiling: Tiling,
    /// Winning width.
    pub width: Width,
    /// Winning z-ring geometry for 3D register decisions (`None` = the
    /// static [`Ring3::auto`] default, and for every non-3D decision).
    pub ring: Option<Ring3>,
    /// Measured throughput of the winner, in grid-point updates/sec.
    pub rate: f64,
    /// What the §3.2 cost model would have chosen, for
    /// chosen-vs-model reporting (`stencil-bench tune`).
    pub model_method: Method,
    /// Candidates actually probed before the budget closed the search.
    pub probes: usize,
    /// Wall time the probe search spent, in milliseconds.
    pub spent_ms: f64,
    /// Best measured rate per probed *method* in this session — the
    /// probe history [`TuneCache::dominated_methods`] reads to shrink
    /// future candidate lists. Empty for pre-history cache files.
    pub method_rates: Vec<(Method, f64)>,
}

/// How a cache image relates to the current host fingerprint — the
/// breakdown [`TuneCache::health_for`] computes so long-running services
/// can report *why* a warm start went cold (foreign-ISA entries after a
/// rebuild, a cache file copied from another machine, ...).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheHealth {
    /// Entries in the image.
    pub total: usize,
    /// Entries this host/build can hit.
    pub local: usize,
    /// Entries from this machine but a different ISA build — invalidated
    /// by the fingerprint (the binary's vector ISA diverged from the
    /// stamp the measurement was taken under).
    pub foreign_isa: usize,
    /// Entries from other machines.
    pub foreign_host: usize,
}

/// In-memory image of the cache file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl TuneCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of persisted decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no decision is persisted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a decision.
    pub fn get(&self, key: &str) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// Iterate over every persisted decision (key order).
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Classify this image's entries against `host`: how many a compile
    /// on this host/build could actually hit, how many belong to the
    /// same machine but a different ISA build (stale after a
    /// rebuild with different target features — the invalidation the
    /// fingerprint exists for), and how many to other machines
    /// entirely. The serving layer turns a nonzero foreign count into a
    /// one-line operator warning instead of a silent cold start.
    pub fn health_for(&self, host: &HostFingerprint) -> CacheHealth {
        let local_prefix = format!("{}|", host.key_prefix());
        let host_prefix = format!("{}|", host.hostname);
        let mut h = CacheHealth::default();
        for e in self.entries.values() {
            h.total += 1;
            if e.key.starts_with(&local_prefix) {
                h.local += 1;
            } else if e.key.starts_with(&host_prefix) {
                h.foreign_isa += 1;
            } else {
                h.foreign_host += 1;
            }
        }
        h
    }

    /// Insert (or replace) a decision.
    pub fn put(&mut self, entry: CacheEntry) {
        self.entries.insert(entry.key.clone(), entry);
    }

    /// Methods the per-host probe history shows to be *dominated* for
    /// `pattern_sig` on `host` at `threads` workers and `width`: probed
    /// in at least `min_sessions` prior **unconstrained** sessions
    /// (entries under this host/build, thread count and requested width
    /// whose key carries the same pattern signature and no fixed
    /// method/tiling/ring — a session probed under a pinned axis is not
    /// a fair method comparison) and, in **every** one of them,
    /// measured below `margin` × that session's best rate. The
    /// candidate generator drops these from future searches — the probe
    /// history shrinking the list over time (first step of the
    /// hill-climb roadmap item). Sessions at other thread counts or
    /// widths never transfer (the cost model itself ranks methods as a
    /// function of both), and a method that ever came within the margin
    /// (or won) is never reported.
    pub fn dominated_methods(
        &self,
        host: &HostFingerprint,
        threads: usize,
        width: Width,
        pattern_sig: &str,
        min_sessions: usize,
        margin: f64,
    ) -> Vec<Method> {
        let local_prefix = format!("{}|t{threads}|w{}|", host.key_prefix(), width.lanes());
        let sig_component = format!("|{pattern_sig}|");
        let mut dominated: Vec<(Method, usize)> = Vec::new();
        let mut cleared: Vec<Method> = Vec::new();
        for e in self.entries.values() {
            if !e.key.starts_with(&local_prefix)
                || !e.key.contains(&sig_component)
                || !e.key.ends_with("|m=*|ti=*|ri=*")
            {
                continue;
            }
            // a session that measured a single method has no comparison
            // to offer
            if e.method_rates.len() < 2 {
                continue;
            }
            let best = e
                .method_rates
                .iter()
                .fold(0.0f64, |acc, &(_, r)| acc.max(r));
            for &(m, rate) in &e.method_rates {
                if rate >= margin * best {
                    if !cleared.contains(&m) {
                        cleared.push(m);
                    }
                } else if let Some(d) = dominated.iter_mut().find(|(dm, _)| *dm == m) {
                    d.1 += 1;
                } else {
                    dominated.push((m, 1));
                }
            }
        }
        dominated
            .into_iter()
            .filter(|&(m, n)| n >= min_sessions && !cleared.contains(&m))
            .map(|(m, _)| m)
            .collect()
    }

    /// Adopt every entry of `other` under a key this cache does not
    /// already hold (existing entries win). Used before a save to fold
    /// in decisions other processes persisted since this image was
    /// loaded, so a full-image write never erases them.
    pub fn merge_missing_from(&mut self, other: TuneCache) {
        for (k, e) in other.entries {
            self.entries.entry(k).or_insert(e);
        }
    }

    /// Load from `path`. `Ok(None)` when the file does not exist;
    /// `Err` when it exists but cannot be read or parsed (the caller
    /// decides whether to degrade to an empty cache).
    pub fn load(path: &Path) -> Result<Option<TuneCache>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("unreadable cache file {path:?}: {e}")),
        };
        let doc = json::parse(&text).map_err(|e| format!("corrupt cache file {path:?}: {e}"))?;
        Self::from_json(&doc)
            .map(Some)
            .ok_or_else(|| format!("corrupt cache file {path:?}: unexpected schema"))
    }

    /// Serialize to `path`, creating parent directories as needed. The
    /// write is atomic (temp file + rename) so a concurrent reader can
    /// never observe a truncated file and misclassify it as corrupt.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json().pretty())?;
        std::fs::rename(&tmp, path)
    }

    /// The cache as a JSON document.
    pub fn to_json(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .values()
            .map(|e| {
                let mut m = BTreeMap::new();
                m.insert("key".into(), Value::Str(e.key.clone()));
                m.insert("method".into(), Value::Str(method_str(e.method)));
                m.insert("tiling".into(), Value::Str(tiling_str(e.tiling)));
                m.insert("width".into(), Value::Num(e.width.lanes() as f64));
                m.insert("rate".into(), Value::Num(e.rate));
                m.insert(
                    "model_method".into(),
                    Value::Str(method_str(e.model_method)),
                );
                m.insert("probes".into(), Value::Num(e.probes as f64));
                m.insert("spent_ms".into(), Value::Num(e.spent_ms));
                if let Some(r) = e.ring {
                    m.insert("ring".into(), Value::Str(ring_str(r)));
                }
                if !e.method_rates.is_empty() {
                    m.insert(
                        "method_rates".into(),
                        Value::Arr(
                            e.method_rates
                                .iter()
                                .map(|&(mm, rate)| {
                                    let mut o = BTreeMap::new();
                                    o.insert("method".into(), Value::Str(method_str(mm)));
                                    o.insert("rate".into(), Value::Num(rate));
                                    Value::Obj(o)
                                })
                                .collect(),
                        ),
                    );
                }
                Value::Obj(m)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Num(CACHE_VERSION));
        root.insert("entries".into(), Value::Arr(entries));
        Value::Obj(root)
    }

    /// Rebuild from a JSON document (`None` on schema mismatch).
    ///
    /// Entries whose decision decodes to `Method::Auto`/`Tiling::Auto`
    /// are semantically corrupt — a decision must be concrete — and are
    /// dropped (forcing a re-probe under that key) rather than allowed
    /// to leak an unresolved `Auto` into a `TuneDecision`.
    pub fn from_json(doc: &Value) -> Option<TuneCache> {
        if doc.get("version")?.as_num()? != CACHE_VERSION {
            return None;
        }
        let mut cache = TuneCache::new();
        for e in doc.get("entries")?.as_arr()? {
            let method = parse_method(e.get("method")?.as_str()?)?;
            let tiling = parse_tiling(e.get("tiling")?.as_str()?)?;
            if method == Method::Auto || tiling == Tiling::Auto {
                continue;
            }
            // optional fields (absent in pre-ring/pre-history caches)
            let ring = e.get("ring").and_then(Value::as_str).and_then(parse_ring);
            let method_rates: Vec<(Method, f64)> = e
                .get("method_rates")
                .and_then(Value::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|o| {
                            Some((
                                parse_method(o.get("method")?.as_str()?)?,
                                o.get("rate")?.as_num()?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default();
            cache.put(CacheEntry {
                key: e.get("key")?.as_str()?.to_string(),
                method,
                tiling,
                width: parse_width(e.get("width")?.as_num()? as usize)?,
                ring,
                rate: e.get("rate")?.as_num()?,
                model_method: parse_method(e.get("model_method")?.as_str()?)?,
                probes: e.get("probes")?.as_num()? as usize,
                spent_ms: e.get("spent_ms")?.as_num()?,
                method_rates,
            });
        }
        Some(cache)
    }
}

// ---------------------------------------------------------------------
// Keys.
// ---------------------------------------------------------------------

/// Stable signature of a stencil pattern — delegates to
/// [`Pattern::signature`], which is the canonical implementation since
/// the serving plan registry keys by the same string (kept here as a
/// free function for cache-key call sites and backward compatibility).
pub fn pattern_signature(p: &Pattern) -> String {
    p.signature()
}

/// Coarse domain shape class — re-export of
/// [`stencil_core::tune::shape_class`], the canonical implementation
/// shared with the serving plan registry.
pub use stencil_core::tune::shape_class;

/// Build the full cache key for a tuning request.
#[allow(clippy::too_many_arguments)] // one parameter per key component, by design
pub fn cache_key(
    host: &HostFingerprint,
    p: &Pattern,
    width: Width,
    threads: usize,
    fixed_method: Option<Method>,
    fixed_tiling: Option<Tiling>,
    fixed_ring: Option<Ring3>,
    hint: Option<&[usize]>,
) -> String {
    format!(
        "{}|t{}|w{}|{}|{}|m={}|ti={}|ri={}",
        host.key_prefix(),
        threads,
        width.lanes(),
        pattern_signature(p),
        shape_class(hint),
        fixed_method.map(method_str).unwrap_or_else(|| "*".into()),
        fixed_tiling.map(tiling_str).unwrap_or_else(|| "*".into()),
        fixed_ring.map(ring_str).unwrap_or_else(|| "*".into()),
    )
}

// ---------------------------------------------------------------------
// Compact string encodings for the enums (JSON-friendly, greppable).
// ---------------------------------------------------------------------

/// Encode a method as a short stable token (`folded:2`, `xlayout`, ...).
pub fn method_str(m: Method) -> String {
    match m {
        Method::Scalar => "scalar".into(),
        Method::MultipleLoads => "multiload".into(),
        Method::DataReorg => "reorg".into(),
        Method::Dlt => "dlt".into(),
        Method::TransposeLayout => "xlayout".into(),
        Method::Folded { m } => format!("folded:{m}"),
        Method::Auto => "auto".into(),
    }
}

/// Decode [`method_str`].
pub fn parse_method(s: &str) -> Option<Method> {
    Some(match s {
        "scalar" => Method::Scalar,
        "multiload" => Method::MultipleLoads,
        "reorg" => Method::DataReorg,
        "dlt" => Method::Dlt,
        "xlayout" => Method::TransposeLayout,
        "auto" => Method::Auto,
        _ => Method::Folded {
            m: s.strip_prefix("folded:")?.parse().ok()?,
        },
    })
}

/// Encode a tiling as a short stable token (`tess:8`, `spatial:8x64`, ...).
pub fn tiling_str(t: Tiling) -> String {
    match t {
        Tiling::None => "none".into(),
        Tiling::Auto => "auto".into(),
        Tiling::Tessellate { time_block } => format!("tess:{time_block}"),
        Tiling::Split { time_block } => format!("split:{time_block}"),
        Tiling::Spatial { block: (a, b) } => format!("spatial:{a}x{b}"),
    }
}

/// Decode [`tiling_str`].
pub fn parse_tiling(s: &str) -> Option<Tiling> {
    if s == "none" {
        return Some(Tiling::None);
    }
    if s == "auto" {
        return Some(Tiling::Auto);
    }
    if let Some(tb) = s.strip_prefix("tess:") {
        return Some(Tiling::Tessellate {
            time_block: tb.parse().ok()?,
        });
    }
    if let Some(tb) = s.strip_prefix("split:") {
        return Some(Tiling::Split {
            time_block: tb.parse().ok()?,
        });
    }
    let (a, b) = s.strip_prefix("spatial:")?.split_once('x')?;
    Some(Tiling::Spatial {
        block: (a.parse().ok()?, b.parse().ok()?),
    })
}

/// Encode a z-ring geometry as `depth x slab` (`"8x4"`).
pub fn ring_str(r: Ring3) -> String {
    format!("{}x{}", r.depth, r.slab)
}

/// Decode [`ring_str`].
pub fn parse_ring(s: &str) -> Option<Ring3> {
    let (d, sl) = s.split_once('x')?;
    Some(Ring3 {
        depth: d.parse().ok()?,
        slab: sl.parse().ok()?,
    })
}

/// Decode a lane count back into a [`Width`].
pub fn parse_width(lanes: usize) -> Option<Width> {
    Some(match lanes {
        1 => Width::W1,
        4 => Width::W4,
        8 => Width::W8,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::kernels;

    fn host(name: &str, isa: &str) -> HostFingerprint {
        HostFingerprint {
            hostname: name.into(),
            isa: isa.into(),
            threads: 8,
        }
    }

    fn sample_entry(key: &str) -> CacheEntry {
        CacheEntry {
            key: key.into(),
            method: Method::Folded { m: 2 },
            tiling: Tiling::Tessellate { time_block: 16 },
            width: Width::W4,
            ring: None,
            rate: 1.25e9,
            model_method: Method::Folded { m: 2 },
            probes: 7,
            spent_ms: 41.5,
            method_rates: vec![],
        }
    }

    #[test]
    fn entry_round_trips_through_json_text() {
        let mut cache = TuneCache::new();
        cache.put(sample_entry(
            "h|avx2-w4|t8|w4|d1r1p3-aa|medium|m=*|ti=*|ri=*",
        ));
        cache.put(CacheEntry {
            key: "other".into(),
            method: Method::Dlt,
            tiling: Tiling::Split { time_block: 8 },
            width: Width::W8,
            model_method: Method::TransposeLayout,
            ..sample_entry("other")
        });
        // the 3D fields round-trip too: a winning ring and probe history
        cache.put(CacheEntry {
            key: "ringy".into(),
            method: Method::Folded { m: 2 },
            ring: Some(Ring3 { depth: 16, slab: 8 }),
            method_rates: vec![
                (Method::Folded { m: 2 }, 2.0e9),
                (Method::MultipleLoads, 0.9e9),
            ],
            ..sample_entry("ringy")
        });
        let text = cache.to_json().pretty();
        let back = TuneCache::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cache);
        assert_eq!(
            back.get("ringy").unwrap().ring,
            Some(Ring3 { depth: 16, slab: 8 })
        );
        assert_eq!(back.get("ringy").unwrap().method_rates.len(), 2);
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let path = std::env::temp_dir().join("stencil-tune-test/roundtrip/cache.json");
        let _ = std::fs::remove_file(&path);
        let mut cache = TuneCache::new();
        cache.put(sample_entry("k1"));
        cache.save(&path).unwrap();
        let back = TuneCache::load(&path).unwrap().unwrap();
        assert_eq!(back, cache);
        assert_eq!(back.get("k1").unwrap().probes, 7);
        let _ = std::fs::remove_file(&path);
        // a missing file is Ok(None), not an error
        assert_eq!(TuneCache::load(&path).unwrap(), None);
    }

    #[test]
    fn corrupt_file_is_a_described_error() {
        let path = std::env::temp_dir().join("stencil-tune-test-corrupt.json");
        std::fs::write(&path, "{ this is not json").unwrap();
        let err = TuneCache::load(&path).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        // valid JSON, wrong schema
        std::fs::write(&path, "[1, 2, 3]").unwrap();
        assert!(TuneCache::load(&path).unwrap_err().contains("schema"));
        // wrong version is also a schema mismatch (None from from_json)
        std::fs::write(&path, "{\"version\": 99.0, \"entries\": []}").unwrap();
        assert!(TuneCache::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_cache_files_are_discarded_not_half_loaded() {
        // v1.0 keys lack the |ri= component: every entry would be
        // unreachable dead weight under the v2.0 key schema, so the
        // whole image is dropped (schema mismatch -> re-probe + rewrite)
        let path = std::env::temp_dir().join("stencil-tune-test-v1.json");
        std::fs::write(
            &path,
            r#"{ "version": 1.0, "entries": [
  { "key": "h|avx2-w4|t8|w4|d1r1p3-aa|medium|m=*|ti=*", "method": "scalar",
    "tiling": "none", "width": 4.0, "rate": 1.0, "model_method": "scalar",
    "probes": 1.0, "spent_ms": 1.0 } ] }"#,
        )
        .unwrap();
        assert!(TuneCache::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_entries_are_semantic_corruption_and_dropped() {
        // a decision must be concrete: hand-merged or future-schema
        // entries carrying "auto" must not round-trip into the cache
        let text = r#"{
  "version": 2.0,
  "entries": [
    { "key": "bad-method", "method": "auto", "tiling": "none", "width": 4.0,
      "rate": 1.0, "model_method": "scalar", "probes": 1.0, "spent_ms": 1.0 },
    { "key": "bad-tiling", "method": "scalar", "tiling": "auto", "width": 4.0,
      "rate": 1.0, "model_method": "scalar", "probes": 1.0, "spent_ms": 1.0 },
    { "key": "good", "method": "scalar", "tiling": "none", "width": 4.0,
      "rate": 1.0, "model_method": "scalar", "probes": 1.0, "spent_ms": 1.0 }
  ]
}"#;
        let cache = TuneCache::from_json(&crate::json::parse(text).unwrap()).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("good").is_some());
        assert!(cache.get("bad-method").is_none());
        assert!(cache.get("bad-tiling").is_none());
    }

    #[test]
    fn dominance_needs_two_sessions_and_consistency() {
        let h = host("a", "avx2-w4");
        let sig = "d3r1p7-ab";
        let entry = |key: &str, rates: Vec<(Method, f64)>| CacheEntry {
            key: format!("{}|t4|w4|{sig}|{key}|m=*|ti=*|ri=*", h.key_prefix()),
            method_rates: rates,
            ..sample_entry("x")
        };
        let slow = Method::DataReorg;
        let fast = Method::Folded { m: 2 };
        let mut cache = TuneCache::new();
        // one session: not enough history
        cache.put(entry("tiny", vec![(fast, 10.0), (slow, 2.0)]));
        assert!(cache
            .dominated_methods(&h, 4, Width::W4, sig, 2, 0.7)
            .is_empty());
        // second session dominating the same method: reported
        cache.put(entry("small", vec![(fast, 8.0), (slow, 1.5)]));
        assert_eq!(
            cache.dominated_methods(&h, 4, Width::W4, sig, 2, 0.7),
            vec![slow]
        );
        // sessions never transfer across thread counts or widths
        assert!(cache
            .dominated_methods(&h, 8, Width::W4, sig, 2, 0.7)
            .is_empty());
        assert!(cache
            .dominated_methods(&h, 4, Width::W8, sig, 2, 0.7)
            .is_empty());
        // sessions probed under a pinned axis are not fair comparisons
        // and contribute no dominance evidence
        let mut pinned = TuneCache::new();
        for class in ["tiny", "small"] {
            pinned.put(CacheEntry {
                key: format!("{}|t4|w4|{sig}|{class}|m=*|ti=split:4|ri=*", h.key_prefix()),
                method_rates: vec![(fast, 10.0), (slow, 1.0)],
                ..sample_entry(class)
            });
        }
        assert!(pinned
            .dominated_methods(&h, 4, Width::W4, sig, 2, 0.7)
            .is_empty());
        // a session where the method came within the margin clears it
        cache.put(entry("medium", vec![(fast, 8.0), (slow, 7.9)]));
        assert!(cache
            .dominated_methods(&h, 4, Width::W4, sig, 2, 0.7)
            .is_empty());
        // foreign-host history never counts
        let mut foreign = TuneCache::new();
        foreign.put(CacheEntry {
            key: format!("elsewhere|avx2-w4|t4|w4|{sig}|tiny|m=*|ti=*|ri=*"),
            method_rates: vec![(fast, 10.0), (slow, 1.0)],
            ..sample_entry("x")
        });
        foreign.put(CacheEntry {
            key: format!("elsewhere|avx2-w4|t8|w4|{sig}|small|m=*|ti=*|ri=*"),
            method_rates: vec![(fast, 10.0), (slow, 1.0)],
            ..sample_entry("y")
        });
        assert!(foreign
            .dominated_methods(&h, 4, Width::W4, sig, 2, 0.7)
            .is_empty());
        // pre-history entries (empty method_rates) contribute nothing
        let mut old = TuneCache::new();
        old.put(entry("tiny", vec![]));
        old.put(entry("small", vec![]));
        assert!(old
            .dominated_methods(&h, 4, Width::W4, sig, 2, 0.7)
            .is_empty());
    }

    #[test]
    fn ring_encoding_round_trips() {
        for r in [
            Ring3 { depth: 8, slab: 4 },
            Ring3 { depth: 1, slab: 1 },
            Ring3 {
                depth: 64,
                slab: 32,
            },
        ] {
            assert_eq!(parse_ring(&ring_str(r)), Some(r));
        }
        assert_eq!(parse_ring("8"), None);
        assert_eq!(parse_ring("ax4"), None);
    }

    #[test]
    fn merge_keeps_own_entries_and_adopts_foreign_ones() {
        let mut ours = TuneCache::new();
        ours.put(CacheEntry {
            rate: 111.0,
            ..sample_entry("shared")
        });
        ours.put(sample_entry("only-ours"));
        let mut theirs = TuneCache::new();
        theirs.put(CacheEntry {
            rate: 999.0,
            ..sample_entry("shared")
        });
        theirs.put(sample_entry("only-theirs"));
        ours.merge_missing_from(theirs);
        assert_eq!(ours.len(), 3);
        // conflict: our decision wins
        assert_eq!(ours.get("shared").unwrap().rate, 111.0);
        assert!(ours.get("only-theirs").is_some());
    }

    #[test]
    fn keys_differ_across_host_isa_pattern_and_class() {
        let p = kernels::heat1d();
        let base = cache_key(
            &host("a", "avx2-w4"),
            &p,
            Width::W4,
            8,
            None,
            None,
            None,
            None,
        );
        let other_host = cache_key(
            &host("b", "avx2-w4"),
            &p,
            Width::W4,
            8,
            None,
            None,
            None,
            None,
        );
        let other_isa = cache_key(
            &host("a", "avx512f-w8"),
            &p,
            Width::W4,
            8,
            None,
            None,
            None,
            None,
        );
        let other_pat = cache_key(
            &host("a", "avx2-w4"),
            &kernels::d1p5(),
            Width::W4,
            8,
            None,
            None,
            None,
            None,
        );
        let other_class = cache_key(
            &host("a", "avx2-w4"),
            &p,
            Width::W4,
            8,
            None,
            None,
            None,
            Some(&[1024]),
        );
        for k in [&other_host, &other_isa, &other_pat, &other_class] {
            assert_ne!(&base, k);
        }
        // same request, same key (determinism)
        assert_eq!(
            base,
            cache_key(
                &host("a", "avx2-w4"),
                &p,
                Width::W4,
                8,
                None,
                None,
                None,
                None
            )
        );
    }

    #[test]
    fn signature_tracks_weights_not_just_shape() {
        let a = pattern_signature(&Pattern::new_1d(&[0.25, 0.5, 0.25]));
        let b = pattern_signature(&Pattern::new_1d(&[0.2, 0.6, 0.2]));
        assert_ne!(a, b);
        assert!(a.starts_with("d1r1p3-"));
    }

    #[test]
    fn shape_classes_bucket_by_points() {
        assert_eq!(shape_class(None), "medium");
        assert_eq!(shape_class(Some(&[4096])), "tiny");
        assert_eq!(shape_class(Some(&[256, 256])), "small");
        assert_eq!(shape_class(Some(&[1024, 1024])), "medium");
        assert_eq!(shape_class(Some(&[400, 400, 400])), "large");
    }

    #[test]
    fn enum_encodings_round_trip() {
        for m in [
            Method::Scalar,
            Method::MultipleLoads,
            Method::DataReorg,
            Method::Dlt,
            Method::TransposeLayout,
            Method::Folded { m: 3 },
            Method::Auto,
        ] {
            assert_eq!(parse_method(&method_str(m)), Some(m));
        }
        for t in [
            Tiling::None,
            Tiling::Auto,
            Tiling::Tessellate { time_block: 12 },
            Tiling::Split { time_block: 5 },
            Tiling::Spatial { block: (8, 64) },
        ] {
            assert_eq!(parse_tiling(&tiling_str(t)), Some(t));
        }
        for w in [Width::W1, Width::W4, Width::W8] {
            assert_eq!(parse_width(w.lanes()), Some(w));
        }
        assert_eq!(parse_method("folded:x"), None);
        assert_eq!(parse_tiling("spatial:8"), None);
        assert_eq!(parse_width(3), None);
    }
}
