//! # stencil-tune
//!
//! Measured autotuning for `stencil-core` plans — the paper's declared
//! future work ("significant efforts are required in automatic tuning",
//! §4.1), built as a subsystem:
//!
//! * [`candidates`] — a search space seeded by the §3.2 op-collect cost
//!   model: the top-K predicted methods plus neighborhood moves over
//!   time blocks, widths and spatial tiles.
//! * [`probe`] — short timed sweeps of each candidate on small
//!   representative domains, compile-once/run-many, all probes sharing
//!   one process-wide worker pool, bounded by a wall-clock budget.
//! * [`cache`] — a persistent per-host plan cache (hand-rolled JSON,
//!   keyed by hostname × ISA build × threads × pattern signature ×
//!   domain shape class), so a host probes once and every later
//!   `compile()` is a warm lookup.
//! * [`AutoTuner`] — ties the three together and implements
//!   `stencil-core`'s [`MeasuredTuner`] hook.
//!
//! ## Usage
//!
//! ```no_run
//! use stencil_core::{kernels, Method, Solver, Tiling, Tuning};
//!
//! stencil_tune::install(); // once per process
//!
//! let plan = Solver::new(kernels::heat2d())
//!     .method(Method::Auto)
//!     .tiling(Tiling::Auto)
//!     .threads(8)
//!     .tuning(Tuning::Measured) // probe (or reuse this host's cache)
//!     .compile()
//!     .unwrap();
//! assert_ne!(plan.method(), Method::Auto);
//! ```
//!
//! The first measured compile probes for ~1 s and persists the winner;
//! every later compile of the same problem class on this host — in this
//! process or any other — resolves from the cache without a single
//! probe run. [`Tuning::CacheOnly`] makes that determinism a contract.
//!
//! ## Environment
//!
//! * `STENCIL_TUNE_CACHE` — cache file path (default
//!   `$XDG_CACHE_HOME/stencil-tune/plans.json`, falling back to
//!   `$HOME/.cache/...`, then the system temp dir).
//! * `STENCIL_TUNE_BUDGET_MS` — probe budget per tuning request in
//!   milliseconds (default 1000).

// Offset-indexed loops are the domain idiom here (windows, tiles, taps);
// iterators would hide the math.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod candidates;
pub mod host;
pub mod json;
pub mod probe;

use cache::{CacheEntry, CacheHealth, TuneCache};
use host::HostFingerprint;
use probe::{Budget, ProbeDomain};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use stencil_core::tune::{MeasuredTuner, TuneDecision, TuneFailure, TuneRequest};
use stencil_core::Tuning;

pub use stencil_core::tune::{install_tuner, installed_tuner};

/// The probing autotuner: cost-model-seeded candidate search, budgeted
/// probes, persistent per-host cache. Implements [`MeasuredTuner`], so
/// installing it (see [`install`]) routes every
/// [`Tuning::Measured`]/[`Tuning::CacheOnly`] `compile()` through it.
pub struct AutoTuner {
    cache_path: PathBuf,
    budget: Budget,
    top_k: usize,
    hostd: HostFingerprint,
    /// Lazily loaded cache image (`None` until first use). A corrupt
    /// file loads as an empty cache — the degradation contract: bad
    /// persistence never breaks compilation, it only costs a re-probe
    /// (and `Tuning::Static` never reads the file at all).
    state: Mutex<Option<TuneCache>>,
    probes: AtomicU64,
    /// One-line operator warnings accumulated by cache loading (corrupt
    /// files, foreign-ISA entries). The serving layer drains these into
    /// its stats surface so cold starts are visible, not silent.
    warnings: Mutex<Vec<String>>,
}

impl AutoTuner {
    /// Tuner with explicit cache path (see [`AutoTuner::from_env`] for
    /// the default resolution).
    pub fn with_cache_path(path: impl Into<PathBuf>) -> Self {
        Self {
            cache_path: path.into(),
            budget: Budget::default(),
            top_k: 3,
            hostd: HostFingerprint::detect(),
            state: Mutex::new(None),
            probes: AtomicU64::new(0),
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// Tuner configured from the environment (`STENCIL_TUNE_CACHE`,
    /// `STENCIL_TUNE_BUDGET_MS`).
    pub fn from_env() -> Self {
        let mut t = Self::with_cache_path(default_cache_path());
        if let Some(ms) = std::env::var("STENCIL_TUNE_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            t.budget = Budget::from_millis(ms);
        }
        t
    }

    /// Override the probe budget.
    pub fn budget(mut self, b: Budget) -> Self {
        self.budget = b;
        self
    }

    /// Override how many cost-model-ranked methods enter the search.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k.max(1);
        self
    }

    /// Override the host fingerprint (tests use this to simulate a
    /// foreign cache).
    pub fn with_host(mut self, hostd: HostFingerprint) -> Self {
        self.hostd = hostd;
        self
    }

    /// The cache file this tuner reads and writes.
    pub fn cache_path(&self) -> &Path {
        &self.cache_path
    }

    /// Timed probe sweeps run so far (warm-ups and runoffs included).
    /// Flat across cache hits — the determinism tests pin that.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// The persisted entry a request would resolve to, if any — the
    /// full measurement record (winner, rate, the cost model's pick,
    /// probe spend), not just the decision. `stencil-bench tune` uses
    /// this for its chosen-vs-model report.
    pub fn lookup(&self, req: &TuneRequest<'_>) -> Option<CacheEntry> {
        let key = self.key_for(req);
        self.with_cache(|c| c.get(&key).cloned())
    }

    /// Run `f` against the lazily-loaded cache image.
    fn with_cache<R>(&self, f: impl FnOnce(&mut TuneCache) -> R) -> R {
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.is_none() {
            *guard = Some(match TuneCache::load(&self.cache_path) {
                Ok(Some(c)) => {
                    // loaded fine, but entries from a different ISA
                    // build of this machine are dead weight compiles
                    // can never hit — tell the operator why the warm
                    // start they expected will re-probe
                    let h = c.health_for(&self.hostd);
                    if h.foreign_isa > 0 {
                        self.warn(format!(
                            "tune cache {:?}: {} of {} entries were measured under a \
                             different ISA build than {} — invalidated, compiles under \
                             those keys re-probe (cold start)",
                            self.cache_path, h.foreign_isa, h.total, self.hostd.isa
                        ));
                    }
                    c
                }
                Ok(None) => TuneCache::new(),
                Err(reason) => {
                    // corrupt/unreadable: degrade to an empty cache and
                    // say so once; the next save overwrites the file.
                    // The warning is also queued for the serving stats
                    // surface, so operators of long-running services
                    // see the cold start instead of a silent re-probe.
                    eprintln!("stencil-tune: {reason}; starting with an empty cache");
                    self.warn(format!(
                        "{reason}; starting with an empty cache (every compile under this \
                         host re-probes until the cache is re-warmed)"
                    ));
                    TuneCache::new()
                }
            });
        }
        f(guard.as_mut().expect("just initialized"))
    }

    fn warn(&self, line: String) {
        self.warnings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line);
    }

    /// Drain the one-line warnings cache loading has accumulated
    /// (corrupt file, foreign-ISA entries). Non-destructive reads are
    /// deliberately not offered: each warning is meant to be surfaced
    /// exactly once, by whichever stats sink drains first.
    pub fn drain_warnings(&self) -> Vec<String> {
        std::mem::take(&mut *self.warnings.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Health of the persisted cache image relative to this host/build
    /// (forces the lazy load). A service can export these counts so a
    /// cold start is attributable: `foreign_isa > 0` means the binary
    /// was rebuilt with different target features since the cache was
    /// warmed.
    pub fn cache_health(&self) -> CacheHealth {
        let hostd = self.hostd.clone();
        self.with_cache(|c| c.health_for(&hostd))
    }

    fn key_for(&self, req: &TuneRequest<'_>) -> String {
        cache::cache_key(
            &self.hostd,
            req.pattern,
            req.width,
            req.threads,
            req.method,
            req.tiling,
            req.ring3,
            req.domain_hint,
        )
    }

    /// Probe the hill-climb neighborhood of an `incumbent` configuration
    /// — the challenger session of online retuning. Unlike
    /// [`MeasuredTuner::tune`], this ignores any cache hit (the point is
    /// to re-measure under *today's* machine and workload), probes the
    /// incumbent itself alongside its [`candidates::neighborhood`]
    /// moves — dominated methods included, which is how periodic
    /// dominance re-probe falls out — and touches neither the cache
    /// image nor the disk: the caller decides whether the verdict is
    /// worth keeping ([`AutoTuner::persist_verdict`]).
    ///
    /// `budget` is per call, independent of the tuner's own probe
    /// budget, so a low-priority background lane can spend a few tens of
    /// milliseconds per challenge without reconfiguring the tuner.
    pub fn challenge(
        &self,
        req: &TuneRequest<'_>,
        incumbent: &candidates::Candidate,
        budget: &Budget,
    ) -> Result<ChallengeOutcome, TuneFailure> {
        let cands = candidates::neighborhood(req.pattern, incumbent, req.threads, self.top_k);
        let class = cache::shape_class(req.domain_hint);
        let domain = ProbeDomain::build(req.pattern, class);
        let report = probe::run(
            req.pattern,
            &cands,
            req.threads,
            &domain,
            budget,
            &self.probes,
        );
        let Some(best) = report.best() else {
            return Err(TuneFailure::Failed {
                reason: format!(
                    "challenge: every candidate failed to compile or run ({} skipped)",
                    report.skipped
                ),
            });
        };
        let incumbent_rate = report
            .outcomes
            .iter()
            .find(|o| {
                o.candidate.method == incumbent.method
                    && o.candidate.tiling == incumbent.tiling
                    && o.candidate.width == incumbent.width
                    && o.candidate.ring == incumbent.ring
            })
            .map(|o| o.rate);
        let mut method_rates: Vec<(stencil_core::Method, f64)> = Vec::new();
        for o in &report.outcomes {
            if let Some(mr) = method_rates
                .iter_mut()
                .find(|(m, _)| *m == o.candidate.method)
            {
                mr.1 = mr.1.max(o.rate);
            } else {
                method_rates.push((o.candidate.method, o.rate));
            }
        }
        Ok(ChallengeOutcome {
            best: best.candidate,
            rate: best.rate,
            incumbent_rate,
            probes: report.outcomes.len(),
            spent_ms: report.spent.as_secs_f64() * 1e3,
            method_rates,
        })
    }

    /// Persist a [`challenge`](AutoTuner::challenge) verdict under the
    /// request's cache key, so the next warm-start resolves straight to
    /// the session's winner. The prior entry's per-method probe history
    /// is carried forward for methods this session did not re-measure —
    /// the dominance bookkeeping keeps accumulating across challenges.
    pub fn persist_verdict(&self, req: &TuneRequest<'_>, outcome: &ChallengeOutcome) {
        let key = self.key_for(req);
        let mut method_rates = outcome.method_rates.clone();
        self.with_cache(|c| {
            if let Some(prev) = c.get(&key) {
                for &(m, r) in &prev.method_rates {
                    if !method_rates.iter().any(|&(pm, _)| pm == m) {
                        method_rates.push((m, r));
                    }
                }
            }
            c.put(CacheEntry {
                key: key.clone(),
                method: outcome.best.method,
                tiling: outcome.best.tiling,
                width: outcome.best.width,
                ring: outcome.best.ring,
                rate: outcome.rate,
                model_method: candidates::model_choice(req.pattern, req.width, req.tiling),
                probes: outcome.probes,
                spent_ms: outcome.spent_ms,
                method_rates: std::mem::take(&mut method_rates),
            });
            if let Ok(Some(disk)) = TuneCache::load(&self.cache_path) {
                c.merge_missing_from(disk);
            }
            if let Err(e) = c.save(&self.cache_path) {
                eprintln!("stencil-tune: could not persist {:?}: {e}", self.cache_path);
            }
        });
    }
}

/// Result of one [`AutoTuner::challenge`] probe session.
#[derive(Debug, Clone)]
pub struct ChallengeOutcome {
    /// The session's winning configuration (possibly the incumbent).
    pub best: candidates::Candidate,
    /// The winner's measured rate (points × steps per second).
    pub rate: f64,
    /// The incumbent's own re-measured rate in the same session, when
    /// the budget reached it (it is probed first).
    pub incumbent_rate: Option<f64>,
    /// Probe sweeps completed.
    pub probes: usize,
    /// Wall-clock spent probing, in milliseconds.
    pub spent_ms: f64,
    /// Best rate per probed method — the probe history fed back into
    /// the cache by [`AutoTuner::persist_verdict`].
    pub method_rates: Vec<(stencil_core::Method, f64)>,
}

/// Fraction of a session's best rate below which a probed method counts
/// as dominated in that session (see
/// [`cache::TuneCache::dominated_methods`]).
pub const DOMINANCE_MARGIN: f64 = 0.7;

/// Probe sessions that must consistently dominate a method before the
/// candidate generator drops it.
pub const DOMINANCE_SESSIONS: usize = 2;

impl MeasuredTuner for AutoTuner {
    fn tune(&self, req: &TuneRequest<'_>) -> Result<TuneDecision, TuneFailure> {
        let key = self.key_for(req);
        if let Some(hit) = self.with_cache(|c| c.get(&key).cloned()) {
            return Ok(TuneDecision {
                method: hit.method,
                tiling: hit.tiling,
                width: hit.width,
                ring3: hit.ring,
                from_cache: true,
            });
        }
        if req.mode == Tuning::CacheOnly {
            return Err(TuneFailure::CacheMiss { key });
        }

        let mut cands = candidates::generate(
            req.pattern,
            req.width,
            req.threads,
            req.method,
            req.tiling,
            req.ring3,
            self.top_k,
        );
        // Probe history shrinks the list: methods this host's prior
        // sessions consistently measured far off the lead are dropped
        // before any budget is spent on them. Fixed methods are never
        // pruned (the caller asked for exactly that one), and the prune
        // never empties the list — the top-ranked survivor always runs.
        if req.method.is_none() {
            let sig = cache::pattern_signature(req.pattern);
            let hostd = self.hostd.clone();
            let doomed = self.with_cache(|c| {
                c.dominated_methods(
                    &hostd,
                    req.threads,
                    req.width,
                    &sig,
                    DOMINANCE_SESSIONS,
                    DOMINANCE_MARGIN,
                )
            });
            if !doomed.is_empty() {
                let kept: Vec<candidates::Candidate> = cands
                    .iter()
                    .filter(|c| !doomed.contains(&c.method))
                    .copied()
                    .collect();
                if !kept.is_empty() {
                    cands = kept;
                }
            }
        }
        if cands.is_empty() {
            return Err(TuneFailure::Failed {
                reason: format!("no candidate configurations for key {key:?}"),
            });
        }
        let class = cache::shape_class(req.domain_hint);
        let domain = ProbeDomain::build(req.pattern, class);
        let report = probe::run(
            req.pattern,
            &cands,
            req.threads,
            &domain,
            &self.budget,
            &self.probes,
        );
        let Some(best) = report.best() else {
            return Err(TuneFailure::Failed {
                reason: format!(
                    "every candidate failed to compile or run ({} skipped) for key {key:?}",
                    report.skipped
                ),
            });
        };

        // per-method probe history: the best rate each method reached in
        // this session, for the dominance pruning of future sessions
        let mut method_rates: Vec<(stencil_core::Method, f64)> = Vec::new();
        for o in &report.outcomes {
            if let Some(mr) = method_rates
                .iter_mut()
                .find(|(m, _)| *m == o.candidate.method)
            {
                mr.1 = mr.1.max(o.rate);
            } else {
                method_rates.push((o.candidate.method, o.rate));
            }
        }
        let entry = CacheEntry {
            key: key.clone(),
            method: best.candidate.method,
            tiling: best.candidate.tiling,
            width: best.candidate.width,
            ring: best.candidate.ring,
            rate: best.rate,
            model_method: candidates::model_choice(req.pattern, req.width, req.tiling),
            probes: report.outcomes.len(),
            spent_ms: report.spent.as_secs_f64() * 1e3,
            method_rates,
        };
        let decision = TuneDecision {
            method: entry.method,
            tiling: entry.tiling,
            width: entry.width,
            ring3: entry.ring,
            from_cache: false,
        };
        self.with_cache(|c| {
            c.put(entry);
            // fold in decisions other processes persisted since our
            // lazy load — the full-image write below must not erase
            // them (our own entries win on key conflict)
            if let Ok(Some(disk)) = TuneCache::load(&self.cache_path) {
                c.merge_missing_from(disk);
            }
            // persistence is best-effort: a read-only cache dir costs
            // re-probes in later processes, never a failed compile
            if let Err(e) = c.save(&self.cache_path) {
                eprintln!("stencil-tune: could not persist {:?}: {e}", self.cache_path);
            }
        });
        Ok(decision)
    }
}

/// Default cache location: `$STENCIL_TUNE_CACHE`, else
/// `$XDG_CACHE_HOME/stencil-tune/plans.json`, else
/// `$HOME/.cache/stencil-tune/plans.json`, else the system temp dir.
pub fn default_cache_path() -> PathBuf {
    if let Ok(p) = std::env::var("STENCIL_TUNE_CACHE") {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    let base = std::env::var("XDG_CACHE_HOME")
        .ok()
        .filter(|p| !p.is_empty())
        .map(PathBuf::from)
        .or_else(|| {
            std::env::var("HOME")
                .ok()
                .filter(|p| !p.is_empty())
                .map(|h| Path::new(&h).join(".cache"))
        })
        .unwrap_or_else(std::env::temp_dir);
    base.join("stencil-tune").join("plans.json")
}

/// Install the process-wide [`AutoTuner`] (configured from the
/// environment) as the measured tuner behind
/// [`Tuning::Measured`]/[`Tuning::CacheOnly`], and return it.
///
/// Idempotent: later calls return the same instance. If a *different*
/// [`MeasuredTuner`] was installed first via
/// [`stencil_core::tune::install_tuner`], that one stays active for
/// `compile()` (first installation wins) — the returned `AutoTuner` is
/// then only reachable directly.
pub fn install() -> &'static AutoTuner {
    INSTALLED.get_or_init(|| register(AutoTuner::from_env()))
}

/// [`install`] with an explicitly configured tuner instead of the
/// environment-derived one — lets embedders (and tests) pin the cache
/// path and probe budget without mutating process-wide environment
/// variables. First installation wins: if a tuner is already active,
/// `tuner` is dropped and the active one is returned.
pub fn install_with(tuner: AutoTuner) -> &'static AutoTuner {
    INSTALLED.get_or_init(move || register(tuner))
}

fn register(tuner: AutoTuner) -> &'static AutoTuner {
    let t: &'static AutoTuner = Box::leak(Box::new(tuner));
    stencil_core::tune::install_tuner(t);
    t
}

static INSTALLED: OnceLock<&'static AutoTuner> = OnceLock::new();

/// The [`AutoTuner`] a previous [`install`] call created, if it is the
/// *active* measured tuner — `None` when nothing was installed yet, or
/// when a foreign [`MeasuredTuner`] won the first-installation race
/// (an inactive `AutoTuner`'s probe counter and warnings would
/// misrepresent what compiles actually do). Long-running services use
/// this to export the tuner's probe counter and cache warnings on
/// their stats surface without forcing an installation.
pub fn installed_auto() -> Option<&'static AutoTuner> {
    let ours = INSTALLED.get().copied()?;
    let active = stencil_core::tune::installed_tuner()?;
    // compare data pointers: `active` is a fat dyn pointer
    std::ptr::eq(
        active as *const dyn MeasuredTuner as *const (),
        ours as *const AutoTuner as *const (),
    )
    .then_some(ours)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{kernels, Method, Tiling, Width};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "stencil-tune-lib-{tag}-{}.json",
            std::process::id()
        ))
    }

    fn req<'a>(
        p: &'a stencil_core::Pattern,
        mode: Tuning,
        hint: Option<&'a [usize]>,
    ) -> TuneRequest<'a> {
        TuneRequest {
            pattern: p,
            width: Width::W4,
            threads: 2,
            method: None,
            tiling: None,
            domain_hint: hint,
            ring3: None,
            mode,
        }
    }

    #[test]
    fn measured_probes_persist_then_hit() {
        let path = temp_path("persist");
        let _ = std::fs::remove_file(&path);
        let tuner = AutoTuner::with_cache_path(&path).budget(Budget::from_millis(150));
        let p = kernels::heat1d();

        let d1 = tuner.tune(&req(&p, Tuning::Measured, None)).unwrap();
        assert!(!d1.from_cache);
        assert_ne!(d1.method, Method::Auto);
        assert_ne!(d1.tiling, Tiling::Auto);
        let probes_after_first = tuner.probe_count();
        assert!(probes_after_first > 0);
        assert!(path.exists(), "cache must be persisted");

        // same request: cache hit, identical decision, zero new probes
        let d2 = tuner.tune(&req(&p, Tuning::Measured, None)).unwrap();
        assert!(d2.from_cache);
        assert_eq!(
            (d2.method, d2.tiling, d2.width),
            (d1.method, d1.tiling, d1.width)
        );
        assert_eq!(tuner.probe_count(), probes_after_first);

        // a fresh tuner instance reads the same decision from disk
        let cold = AutoTuner::with_cache_path(&path);
        let d3 = cold.tune(&req(&p, Tuning::CacheOnly, None)).unwrap();
        assert!(d3.from_cache);
        assert_eq!(d3.method, d1.method);
        assert_eq!(cold.probe_count(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_only_misses_are_typed() {
        let path = temp_path("miss");
        let _ = std::fs::remove_file(&path);
        let tuner = AutoTuner::with_cache_path(&path);
        let p = kernels::heat2d();
        match tuner.tune(&req(&p, Tuning::CacheOnly, None)) {
            Err(TuneFailure::CacheMiss { key }) => assert!(key.contains("d2r1p5")),
            other => panic!("expected CacheMiss, got {other:?}"),
        }
        assert_eq!(tuner.probe_count(), 0, "CacheOnly must never probe");
    }

    #[test]
    fn foreign_host_cache_forces_reprobe() {
        let path = temp_path("foreign");
        let _ = std::fs::remove_file(&path);
        let p = kernels::heat1d();
        // warm the cache under a fake fingerprint...
        let foreign = AutoTuner::with_cache_path(&path)
            .budget(Budget::from_millis(100))
            .with_host(HostFingerprint {
                hostname: "some-other-box".into(),
                isa: "avx512f-w8".into(),
                threads: 64,
            });
        foreign.tune(&req(&p, Tuning::Measured, None)).unwrap();
        // ...then read it back as the real host: the entry must not match
        let local = AutoTuner::with_cache_path(&path).budget(Budget::from_millis(100));
        match local.tune(&req(&p, Tuning::CacheOnly, None)) {
            Err(TuneFailure::CacheMiss { .. }) => {}
            other => panic!("foreign entries must not be reused: {other:?}"),
        }
        let d = local.tune(&req(&p, Tuning::Measured, None)).unwrap();
        assert!(!d.from_cache, "must re-probe on this host");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_cache_degrades_to_probing() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{{{ not json").unwrap();
        let tuner = AutoTuner::with_cache_path(&path).budget(Budget::from_millis(100));
        let p = kernels::heat1d();
        let d = tuner.tune(&req(&p, Tuning::Measured, None)).unwrap();
        assert!(!d.from_cache);
        // and the corrupt file was replaced by a valid one
        let reloaded = TuneCache::load(&path).unwrap().unwrap();
        assert_eq!(reloaded.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_tuner_saves_do_not_erase_each_other() {
        // simulates two processes sharing one cache file: an instance
        // that loaded its image early must not clobber entries another
        // instance persisted in the meantime
        let path = temp_path("merge");
        let _ = std::fs::remove_file(&path);
        let budget = Budget::from_millis(60);
        let p1 = kernels::heat1d();
        let p2 = kernels::heat2d();
        let p3 = kernels::d1p5();

        let a = AutoTuner::with_cache_path(&path).budget(budget);
        a.tune(&req(&p1, Tuning::Measured, None)).unwrap(); // A: loads empty, saves {p1}
        let b = AutoTuner::with_cache_path(&path).budget(budget);
        b.tune(&req(&p2, Tuning::Measured, None)).unwrap(); // B: saves {p1, p2}
        a.tune(&req(&p3, Tuning::Measured, None)).unwrap(); // A's image predates p2
        let on_disk = TuneCache::load(&path).unwrap().unwrap();
        assert_eq!(on_disk.len(), 3, "A's save must not erase B's entry");
        // and a cold reader resolves all three without probing
        let c = AutoTuner::with_cache_path(&path);
        for p in [&p1, &p2, &p3] {
            assert!(c.tune(&req(p, Tuning::CacheOnly, None)).unwrap().from_cache);
        }
        assert_eq!(c.probe_count(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fixed_axes_are_honored_in_decisions() {
        let path = temp_path("fixed");
        let _ = std::fs::remove_file(&path);
        let tuner = AutoTuner::with_cache_path(&path).budget(Budget::from_millis(100));
        let p = kernels::heat2d();
        let mut r = req(&p, Tuning::Measured, None);
        r.method = Some(Method::TransposeLayout);
        let d = tuner.tune(&r).unwrap();
        assert_eq!(d.method, Method::TransposeLayout);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn probe_history_prunes_dominated_methods() {
        use stencil_core::{Method, Tiling};
        let path = temp_path("dominance");
        let _ = std::fs::remove_file(&path);
        let p = kernels::heat1d();
        let hostd = HostFingerprint::detect();
        // seed two prior sessions (distinct shape classes) whose probe
        // history shows DataReorg hopelessly dominated
        let mut seeded = cache::TuneCache::new();
        for (hint, rate) in [(&[2048usize][..], 1.0e8), (&[500_000usize][..], 1.2e8)] {
            let key = cache::cache_key(&hostd, &p, Width::W4, 2, None, None, None, Some(hint));
            seeded.put(cache::CacheEntry {
                key,
                method: Method::Folded { m: 2 },
                tiling: Tiling::Tessellate { time_block: 8 },
                width: Width::W4,
                ring: None,
                rate: 10.0 * rate,
                model_method: Method::Folded { m: 2 },
                probes: 5,
                spent_ms: 20.0,
                method_rates: vec![
                    (Method::Folded { m: 2 }, 10.0 * rate),
                    (Method::TransposeLayout, 9.0 * rate),
                    (Method::DataReorg, rate),
                ],
            });
        }
        seeded.save(&path).unwrap();
        // a fresh probe session under a *new* key must not spend budget
        // on the dominated method: its session history excludes it
        let tuner = AutoTuner::with_cache_path(&path)
            .budget(Budget::from_millis(1500))
            .top_k(8);
        let hint: &[usize] = &[60_000];
        let d = tuner.tune(&req(&p, Tuning::Measured, Some(hint))).unwrap();
        assert!(!d.from_cache);
        let entry = tuner
            .lookup(&req(&p, Tuning::CacheOnly, Some(hint)))
            .unwrap();
        assert!(
            !entry
                .method_rates
                .iter()
                .any(|&(m, _)| m == Method::DataReorg),
            "dominated method must be pruned from the probe list: {:?}",
            entry.method_rates
        );
        // methods with a clean record still get probed
        assert!(entry
            .method_rates
            .iter()
            .any(|&(m, _)| matches!(m, Method::Folded { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_classes_cache_separately() {
        let path = temp_path("classes");
        let _ = std::fs::remove_file(&path);
        let tuner = AutoTuner::with_cache_path(&path).budget(Budget::from_millis(80));
        let p = kernels::heat1d();
        let tiny: &[usize] = &[2048];
        tuner.tune(&req(&p, Tuning::Measured, Some(tiny))).unwrap();
        // the large class was never probed, so CacheOnly misses it
        let large: &[usize] = &[8_000_000];
        match tuner.tune(&req(&p, Tuning::CacheOnly, Some(large))) {
            Err(TuneFailure::CacheMiss { .. }) => {}
            other => panic!("distinct shape classes must not share entries: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
