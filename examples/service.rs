//! Run the stencil job service end to end: declare a manifest, warm the
//! plan registry at startup, drive a small mixed workload from
//! concurrent clients, and print the JSON stats surface.
//!
//! ```sh
//! cargo run --release --example service
//! ```

use stencil_lab::core::kernels;
use stencil_lab::serve::{JobDomain, JobSpec, Manifest, ServeConfig, ShardPolicy, StencilService};
use stencil_lab::{Grid2D, Grid3D, Tuning};

fn main() {
    // 1. The manifest: what this deployment expects to serve. In
    //    production this is a file (see `Manifest::load`); tuning
    //    "static" needs no warmed cache — use "cache-only" after a
    //    `stencil-bench tune` pre-warm for measured plans with zero
    //    probe runs at startup.
    let mut manifest = Manifest::new(Tuning::Static);
    manifest
        .push_kernel("heat2d", Some(&[1024, 1024])) // large: also pre-warms the shard plan
        .push_kernel("box2d9p", Some(&[512, 512]))
        .push_kernel("star3d", Some(&[64, 64, 64]));

    // 2. Start + warm: every plan is compiled before traffic arrives.
    let service = StencilService::start(ServeConfig {
        threads: stencil_lab::runtime::available_parallelism(),
        workers: 2,
        queue_capacity: 32,
        // shard ≥ 1M-point jobs into slab lanes even on small hosts, so
        // the example demonstrates the path (defaults key off the core
        // count)
        shard: ShardPolicy {
            min_points: 1 << 20,
            max_shards: stencil_lab::runtime::available_parallelism().max(2),
            min_slab: 16,
        },
        ..ServeConfig::default()
    });
    let report = service.warm(&manifest);
    println!(
        "warm start: {} plan(s) compiled, {} cold fallback(s), {} failure(s)",
        report.loaded,
        report.fallbacks,
        report.failed.len()
    );

    // 3. Concurrent closed-loop clients: each submits, waits, repeats.
    //    `submit` blocks when the queue is full — that is the
    //    backpressure contract; use `try_submit` to shed load instead.
    std::thread::scope(|scope| {
        for client in 0..3 {
            let service = &service;
            scope.spawn(move || {
                for round in 0..4 {
                    let seed = client * 10 + round;
                    let spec = match seed % 3 {
                        // large enough for the shard policy: served as
                        // parallel block-free slabs, bit-identical to
                        // the unsharded plan
                        0 => JobSpec::new(
                            kernels::heat2d(),
                            JobDomain::D2(Grid2D::from_fn(1024, 1024, |y, x| {
                                ((y * 7 + x + seed) % 13) as f64
                            })),
                            5,
                        ),
                        1 => JobSpec::new(
                            kernels::box2d9p(),
                            JobDomain::D2(Grid2D::from_fn(512, 512, |y, x| {
                                ((y + x * 3 + seed) % 11) as f64
                            })),
                            10,
                        ),
                        _ => JobSpec::new(
                            kernels::heat3d(),
                            JobDomain::D3(Grid3D::from_fn(64, 64, 64, |z, y, x| {
                                ((z + y + x + seed) % 7) as f64
                            })),
                            6,
                        ),
                    };
                    let ticket = service
                        .submit(spec)
                        .expect("service accepts in-manifest jobs");
                    let result = ticket.wait().expect("job executes");
                    println!(
                        "client {client} round {round}: {} shard(s), {} µs{}",
                        result.shards,
                        result.latency.as_micros(),
                        if result.batched { ", batched" } else { "" },
                    );
                }
            });
        }
    });

    // 4. The stats surface — the same hand-rolled JSON the benchmark
    //    harness and the tuning cache use.
    let stats = service.shutdown();
    println!("\nfinal stats:\n{}", stats.to_json().pretty());
    assert_eq!(stats.jobs_completed, 12);
}
