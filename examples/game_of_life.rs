//! Conway's Game of Life on the vectorized stencil engine: a glider gun
//! rendered as ASCII, then a large random soup timed with the scalar,
//! vectorized and fused-two-step kernels under tessellate tiling.
//!
//! ```sh
//! cargo run --release --example game_of_life
//! ```

use std::time::Instant;
use stencil_lab::core::exec::life;
use stencil_lab::core::tile::tessellate;
use stencil_lab::runtime::PoolHandle;
use stencil_lab::simd::NativeF64x4;
use stencil_lab::{Grid2D, PingPong};

/// Gosper glider gun cells (row, col) offsets.
const GUN: [(usize, usize); 36] = [
    (5, 1),
    (5, 2),
    (6, 1),
    (6, 2),
    (3, 13),
    (3, 14),
    (4, 12),
    (4, 16),
    (5, 11),
    (5, 17),
    (6, 11),
    (6, 15),
    (6, 17),
    (6, 18),
    (7, 11),
    (7, 17),
    (8, 12),
    (8, 16),
    (9, 13),
    (9, 14),
    (1, 25),
    (2, 23),
    (2, 25),
    (3, 21),
    (3, 22),
    (4, 21),
    (4, 22),
    (5, 21),
    (5, 22),
    (6, 23),
    (6, 25),
    (7, 25),
    (3, 35),
    (3, 36),
    (4, 35),
    (4, 36),
];

fn render(g: &Grid2D, rows: usize, cols: usize) -> String {
    let mut out = String::new();
    for y in 0..rows.min(g.ny()) {
        for x in 0..cols.min(g.nx()) {
            out.push(if g[(y, x)] > 0.5 { 'o' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() {
    // 1. Glider gun demo
    let mut gun = Grid2D::zeros(48, 80);
    for &(y, x) in &GUN {
        gun[(y + 2, x + 2)] = 1.0;
    }
    let after = life::sweep::<NativeF64x4>(&gun, 60);
    println!("Gosper glider gun after 60 generations:");
    println!("{}", render(&after, 40, 78));

    // 2. Throughput on a large soup, three kernels
    let (ny, nx) = (1024, 1024);
    let t = 100;
    let soup = life::random_soup(ny, nx, 42);
    // one shareable pool handle, reused by all three timed kernels
    let pool = PoolHandle::new(stencil_lab::runtime::available_parallelism().min(8));
    let cells = (ny * nx * t) as f64;

    let t0 = Instant::now();
    let mut pp = PingPong::new(soup.clone());
    tessellate::run_2d(
        &pool,
        &mut pp,
        1,
        1,
        8,
        t,
        &|s: &Grid2D, d: &mut Grid2D, ys, xs| life::step_range_scalar(s, d, ys, xs),
    );
    let scalar_out = pp.into_current();
    println!(
        "scalar + tessellation : {:>7.1} Mcells/s",
        cells / t0.elapsed().as_secs_f64() / 1e6
    );

    let t0 = Instant::now();
    let mut pp = PingPong::new(soup.clone());
    tessellate::run_2d(
        &pool,
        &mut pp,
        1,
        1,
        8,
        t,
        &|s: &Grid2D, d: &mut Grid2D, ys, xs| life::step_range::<NativeF64x4>(s, d, ys, xs),
    );
    let vec_out = pp.into_current();
    println!(
        "SIMD   + tessellation : {:>7.1} Mcells/s",
        cells / t0.elapsed().as_secs_f64() / 1e6
    );

    let t0 = Instant::now();
    let mut pp = PingPong::new(soup.clone());
    tessellate::run_2d(
        &pool,
        &mut pp,
        2,
        2,
        8,
        t / 2,
        &|s: &Grid2D, d: &mut Grid2D, ys, xs| life::step2_range::<NativeF64x4>(s, d, ys, xs),
    );
    println!(
        "fused 2-step          : {:>7.1} Mcells/s",
        cells / t0.elapsed().as_secs_f64() / 1e6
    );

    // scalar and SIMD paths must agree exactly (binary states)
    let err = stencil_lab::grid::max_abs_diff(&scalar_out.to_dense(), &vec_out.to_dense());
    println!("scalar vs SIMD agreement: max |diff| = {err}");
    assert_eq!(err, 0.0);
}
