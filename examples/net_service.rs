//! Run the network serving front end end to end: start the TCP server
//! over a warmed service, drive jobs from real protocol clients
//! (including a multi-round job streaming progress), scrape
//! `/healthz` and `/metrics` over plain HTTP on the same port, and
//! shut down cleanly.
//!
//! ```sh
//! cargo run --release --example net_service
//! ```

use stencil_lab::core::kernels;
use stencil_lab::serve::net::{http_get, JobEvent, NetClient, NetConfig, NetServer, SubmitHeader};
use stencil_lab::serve::{Manifest, ServeConfig, StencilService};
use stencil_lab::{Grid2D, Tuning};

fn main() {
    // 1. Start + warm a service, then put the network front end over
    //    it. Port 0 binds an ephemeral port; a deployment would pin
    //    one ("0.0.0.0:7070") in NetConfig.
    let service = StencilService::start(ServeConfig {
        threads: stencil_lab::runtime::available_parallelism(),
        workers: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    let mut manifest = Manifest::new(Tuning::Static);
    manifest.push_kernel("heat2d", Some(&[256, 256]));
    service.warm(&manifest);
    let server = NetServer::start(
        service,
        NetConfig {
            addr: "127.0.0.1:0".into(),
            tenant_quota: 4,
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    println!("serving on {addr}");

    // 2. A protocol client: hello handshake, submit (JSON header +
    //    raw f64 payload), blocking run.
    let grid = Grid2D::from_fn(256, 256, |y, x| ((y * 7 + x) % 13) as f64);
    let mut client = NetClient::connect(addr, "example-tenant").expect("connect");
    let header = |steps: usize, rounds: usize| SubmitHeader {
        id: 0, // the client assigns ids
        name: "heat2d".into(),
        pattern: kernels::heat2d(),
        extents: vec![256, 256],
        steps,
        rounds,
        tuning: None,
        deadline_ms: None,
    };
    let out = client.run(header(10, 1), &grid.to_dense()).expect("job");
    println!(
        "single-round job: {} points back, {} shard(s), {} µs",
        out.data.len(),
        out.shards,
        out.latency_us
    );

    // 3. A multi-round job: the server splits the steps into rounds
    //    and streams a progress frame after each — the job-handle
    //    protocol for long jobs.
    let id = client
        .submit(header(12, 4), &grid.to_dense())
        .expect("accepted");
    loop {
        match client.next_event(id).expect("event") {
            JobEvent::Progress { round, rounds } => println!("  progress: round {round}/{rounds}"),
            JobEvent::Done(out) => {
                println!("multi-round job done: {} µs total", out.latency_us);
                break;
            }
        }
    }
    client.bye().expect("goodbye");

    // 4. The scrape surface: plain HTTP on the same port. The first
    //    byte of "GET" can never be a valid frame length, so the
    //    server tells the protocols apart per connection.
    let (code, health) = http_get(addr, "/healthz").expect("scrape");
    println!("GET /healthz -> {code} {health}");
    let (code, metrics) = http_get(addr, "/metrics").expect("scrape");
    println!(
        "GET /metrics -> {code}, {} bytes (per-tenant counters included)",
        metrics.len()
    );

    // 5. Clean shutdown returns the final stats snapshot.
    let stats = server.shutdown();
    println!(
        "shutdown: {} jobs completed, tenant rows: {:?}",
        stats.jobs_completed,
        stats.tenants.keys().collect::<Vec<_>>()
    );
    assert_eq!(stats.tenants["example-tenant"].completed, 2);
}
