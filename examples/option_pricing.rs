//! American put option pricing with the APOP kernel (paper Table 1): a
//! 1D 3-point stencil over two arrays with an early-exercise check,
//! run backward from expiry with the vectorized and folded executors.
//! The European limit (no early exercise) is a plain linear stencil, so
//! it is priced through a compiled [`Plan`] — one compile, one run per
//! maturity.
//!
//! ```sh
//! cargo run --release --example option_pricing
//! ```

use std::time::Instant;
use stencil_lab::core::exec::apop;
use stencil_lab::simd::NativeF64x4;
use stencil_lab::{Method, Solver, Tiling};

fn main() {
    let n = 200_001; // spot grid 0..=2000 in steps of 0.01
    let strike = 100.0;
    let ds = 0.001;
    let steps = 2000;
    let ap = apop::Apop::new(n, strike, ds);

    println!("American put, strike = {strike}, {n} spot points, {steps} steps");

    // per-step exercise (American)
    let t0 = Instant::now();
    let american = apop::sweep::<NativeF64x4>(&ap, steps);
    let t_american = t0.elapsed();

    // folded (Bermudan, exercise every 2nd step) — the paper's
    // "Our (2 steps)" trade for this kernel
    let t0 = Instant::now();
    let bermudan = apop::sweep_folded::<NativeF64x4>(&ap, 2, steps);
    let t_bermudan = t0.elapsed();

    // European limit (never exercise early): the update is purely linear,
    // so it runs through a compiled plan — the library's folded +
    // tessellated fast path, planned once.
    let plan = Solver::new(ap.linear_pattern())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 16 })
        .threads(stencil_lab::runtime::available_parallelism().min(8))
        .compile()
        .expect("APOP's linear part is a valid 1D pattern");
    let t0 = Instant::now();
    let european = plan.run_1d(&ap.initial_values(), steps).unwrap();
    let t_european = t0.elapsed();

    println!(
        "American (m=1): {:>6.1} ms   Bermudan (m=2): {:>6.1} ms   European (plan): {:>6.1} ms",
        t_american.as_secs_f64() * 1e3,
        t_bermudan.as_secs_f64() * 1e3,
        t_european.as_secs_f64() * 1e3
    );

    println!("\n  spot     payoff   American   Bermudan   European   early-exercise premium");
    for spot in [60.0f64, 80.0, 90.0, 100.0, 110.0, 120.0] {
        let i = ((spot / ds).round() as usize).min(n - 1);
        let intrinsic = ap.payoff[i];
        println!(
            "{:>7.1} {:>9.3} {:>10.4} {:>10.4} {:>10.4} {:>12.4}",
            spot,
            intrinsic,
            american[i],
            bermudan[i],
            european[i],
            american[i] - intrinsic
        );
    }

    // sanity: value dominates intrinsic, Bermudan <= American, and the
    // American right to exercise early is worth something non-negative
    // against the European limit (away from the boundary bands)
    let mut violations = 0usize;
    for i in 4..n - 4 {
        if american[i] < ap.payoff[i] - 1e-9 || bermudan[i] > american[i] + 1e-9 {
            violations += 1;
        }
    }
    let band = 4 * steps.min(1000);
    for i in band..n - band {
        if european[i] > american[i] + 1e-6 {
            violations += 1;
        }
    }
    println!("\nno-arbitrage violations: {violations}");
    assert_eq!(violations, 0);
}
