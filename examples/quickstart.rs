//! Quickstart: solve a 1D heat equation with every vectorization method
//! and verify they agree, then time the paper's folded method against
//! the baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;
use stencil_lab::core::kernels;
use stencil_lab::{Grid1D, Method, Solver, Tiling};

fn main() {
    let n = 1 << 20;
    let t = 200;
    let grid = Grid1D::from_fn(n, |i| if i == n / 2 { 1.0 } else { 0.0 });
    let pattern = kernels::heat1d();

    println!(
        "1D heat, n = {n}, T = {t} ({})",
        stencil_lab::simd::backend_summary()
    );
    println!();

    // 1. All methods agree with the scalar reference.
    let reference = Solver::new(pattern.clone())
        .method(Method::Scalar)
        .run_1d(&grid, t);
    for method in [
        Method::MultipleLoads,
        Method::DataReorg,
        Method::Dlt,
        Method::TransposeLayout,
    ] {
        let out = Solver::new(pattern.clone()).method(method).run_1d(&grid, t);
        let err = stencil_lab::grid::max_abs_diff(reference.as_slice(), out.as_slice());
        println!("{method:?}: max |diff vs scalar| = {err:.2e}");
        assert!(err < 1e-12);
    }
    println!();

    // 2. Throughput comparison (block-free, single thread).
    let flops = 2.0 * pattern.points() as f64 * n as f64 * t as f64;
    for (name, method) in [
        ("Multiple Loads ", Method::MultipleLoads),
        ("Data Reorg     ", Method::DataReorg),
        ("DLT            ", Method::Dlt),
        ("Our            ", Method::TransposeLayout),
        ("Our (2 steps)  ", Method::Folded { m: 2 }),
    ] {
        let solver = Solver::new(pattern.clone()).method(method);
        let t0 = Instant::now();
        let out = solver.run_1d(&grid, t);
        let dt = t0.elapsed();
        let mass: f64 = out.as_slice().iter().sum();
        println!(
            "{name} {:>7.2} GFLOP/s   (mass error {:.1e})",
            flops / dt.as_secs_f64() / 1e9,
            (mass - 1.0).abs()
        );
    }
    println!();

    // 3. The full configuration: folding + tessellate tiling + threads.
    let threads = stencil_lab::runtime::available_parallelism().min(8);
    let solver = Solver::new(pattern)
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 32 })
        .threads(threads);
    let t0 = Instant::now();
    let out = solver.run_1d(&grid, t);
    let dt = t0.elapsed();
    println!(
        "Folded + tessellation on {threads} threads: {:.2} GFLOP/s",
        flops / dt.as_secs_f64() / 1e9
    );
    let err = stencil_lab::grid::max_abs_diff(reference.as_slice(), out.as_slice());
    println!("max |diff vs scalar| = {err:.2e} (folded Dirichlet band differs only near edges)");
}
