//! Quickstart: compile a plan per vectorization method for a 1D heat
//! equation, verify they agree, then time the paper's folded method
//! against the baselines — each plan compiled once and reused.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;
use stencil_lab::core::kernels;
use stencil_lab::{Grid1D, Method, Solver, Tiling};

fn main() {
    let n = 1 << 20;
    let t = 200;
    let grid = Grid1D::from_fn(n, |i| if i == n / 2 { 1.0 } else { 0.0 });
    let pattern = kernels::heat1d();

    println!(
        "1D heat, n = {n}, T = {t} ({})",
        stencil_lab::simd::backend_summary()
    );
    println!();

    // 1. All methods agree with the scalar reference. One compiled plan
    //    per method; compilation validates the combination up front.
    let reference = Solver::new(pattern.clone())
        .method(Method::Scalar)
        .compile()
        .expect("scalar plan")
        .run_1d(&grid, t)
        .unwrap();
    for method in [
        Method::MultipleLoads,
        Method::DataReorg,
        Method::Dlt,
        Method::TransposeLayout,
    ] {
        let plan = Solver::new(pattern.clone())
            .method(method)
            .compile()
            .expect("valid block-free configuration");
        let out = plan.run_1d(&grid, t).unwrap();
        let err = stencil_lab::grid::max_abs_diff(reference.as_slice(), out.as_slice());
        println!("{method:?}: max |diff vs scalar| = {err:.2e}");
        assert!(err < 1e-12);
    }
    println!();

    // 2. Throughput comparison (block-free, single thread). The plan is
    //    compiled once per method; the timed loop only runs it.
    let flops = 2.0 * pattern.points() as f64 * n as f64 * t as f64;
    for (name, method) in [
        ("Multiple Loads ", Method::MultipleLoads),
        ("Data Reorg     ", Method::DataReorg),
        ("DLT            ", Method::Dlt),
        ("Our            ", Method::TransposeLayout),
        ("Our (2 steps)  ", Method::Folded { m: 2 }),
    ] {
        let plan = Solver::new(pattern.clone())
            .method(method)
            .compile()
            .unwrap();
        let t0 = Instant::now();
        let out = plan.run_1d(&grid, t).unwrap();
        let dt = t0.elapsed();
        let mass: f64 = out.as_slice().iter().sum();
        println!(
            "{name} {:>7.2} GFLOP/s   (mass error {:.1e})",
            flops / dt.as_secs_f64() / 1e9,
            (mass - 1.0).abs()
        );
    }
    println!();

    // 3. The full configuration: folding + tessellate tiling + threads,
    //    compiled once and run three times — the pool and the folded
    //    kernel are reused across runs.
    let threads = stencil_lab::runtime::available_parallelism().min(8);
    let plan = Solver::new(pattern.clone())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 32 })
        .threads(threads)
        .compile()
        .expect("folded + tessellate");
    for round in 1..=3 {
        let t0 = Instant::now();
        let out = plan.run_1d(&grid, t).unwrap();
        let dt = t0.elapsed();
        let err = stencil_lab::grid::max_abs_diff(reference.as_slice(), out.as_slice());
        println!(
            "Folded + tessellation on {threads} threads, run {round}: {:.2} GFLOP/s \
             (max |diff vs scalar| = {err:.2e})",
            flops / dt.as_secs_f64() / 1e9
        );
    }
    println!("(the folded Dirichlet band differs only near the edges)");
    println!();

    // 4. Or let the library choose: Method::Auto resolves through the
    //    cost model at compile time.
    let auto = Solver::new(pattern).method(Method::Auto).compile().unwrap();
    println!("Method::Auto resolved to {:?}", auto.method());
}
