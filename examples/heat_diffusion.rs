//! 2D heat diffusion with a hot plate: renders the temperature field as
//! ASCII frames while solving with the paper's folded register kernel
//! under tessellate tiling, and cross-checks against the scalar solver.
//! The plan is compiled once and reused for every frame and for the
//! verification run — no per-frame re-planning.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use stencil_lab::core::kernels;
use stencil_lab::{Grid2D, Method, Solver, Tiling};

const SHADES: &[u8] = b" .:-=+*#%@";

fn render(g: &Grid2D, rows: usize, cols: usize) -> String {
    let mut out = String::new();
    let max = g
        .to_dense()
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    for ry in 0..rows {
        let y = ry * g.ny() / rows;
        for rx in 0..cols {
            let x = rx * g.nx() / cols;
            let v = (g[(y, x)] / max * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[v.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let (ny, nx) = (256, 256);
    // hot square plate in a cold room
    let grid = Grid2D::from_fn(ny, nx, |y, x| {
        let hot = (96..160).contains(&y) && (64..128).contains(&x);
        if hot {
            100.0
        } else {
            0.0
        }
    });

    // Compile once: the folding matrix, register-kernel plan and thread
    // pool are derived here and reused by every run below.
    let plan = Solver::new(kernels::heat2d())
        .method(Method::Folded { m: 2 })
        .tiling(Tiling::Tessellate { time_block: 8 })
        .threads(stencil_lab::runtime::available_parallelism().min(8))
        .compile()
        .expect("folded + tessellate is a valid 2D configuration");

    let mut state = grid.clone();
    println!("t = 0");
    println!("{}", render(&state, 24, 48));
    for frame in 1..=3 {
        let steps = 400;
        state = plan.run_2d(&state, steps).unwrap();
        println!("t = {}", frame * steps);
        println!("{}", render(&state, 24, 48));
    }

    // verification against the scalar reference on a shorter run
    let want = Solver::new(kernels::heat2d())
        .method(Method::Scalar)
        .compile()
        .unwrap()
        .run_2d(&grid, 50)
        .unwrap();
    let got = plan.run_2d(&grid, 50).unwrap();
    let err = stencil_lab::grid::max_abs_diff(&want.to_dense(), &got.to_dense());
    println!("verification vs scalar after 50 steps: max |diff| = {err:.2e}");
    // the folded method freezes a 2-cell Dirichlet band; interior matches
    let (wd, gd) = (want.to_dense(), got.to_dense());
    let mut interior_err = 0.0f64;
    for y in 4..ny - 4 {
        for x in 4..nx - 4 {
            interior_err = interior_err.max((wd[y * nx + x] - gd[y * nx + x]).abs());
        }
    }
    println!("interior-only error: {interior_err:.2e}");
    assert!(interior_err < 1e-9);
}
